//! End-to-end RAG serving: dataset → retrieval → KV store → pipelined
//! CacheBlend fusion → decode → quality scoring.
//!
//! This walks the full production path of Figure 11: a vector index
//! retrieves chunks, their serialized KV entries are fetched from a tiered
//! store, a loader thread streams layers while the fusor recomputes the
//! HKVD tokens, and the answer is scored against the gold label.
//!
//! Run with: `cargo run --release --example rag_pipeline`

use cacheblend::core::controller::LoadingController;
use cacheblend::core::fusor::BlendConfig;
use cacheblend::core::pipeline::blend_pipelined;
use cacheblend::kv::chunk::hash_tokens;
use cacheblend::kv::precompute::precompute_chunk;
use cacheblend::kv::store::KvStore;
use cacheblend::model::{Model, ModelConfig, ModelProfile};
use cacheblend::rag::datasets::{Dataset, DatasetKind};
use cacheblend::storage::device::DeviceKind;
use cacheblend::storage::perf::{PaperModel, PerfModel};

fn main() {
    let model = Model::compiled(ModelConfig::standard(ModelProfile::Mistral7B, 11));
    let ds = Dataset::standard(DatasetKind::MusiqueSim, 7);
    println!("dataset: {ds:?}");

    // Offline: precompute every chunk's KV and fill the store (RAM tier).
    let store = KvStore::single("cpu-ram", 1 << 30);
    for chunk in &ds.chunks {
        let id = hash_tokens(chunk);
        store
            .insert(id, &precompute_chunk(&model, chunk))
            .expect("store insert");
    }
    println!("stored {} chunk entries\n", store.len());

    // The §5.1 controller picks the recompute ratio for the device.
    let perf = PerfModel::on_a40(PaperModel::Mistral7B);
    let controller = LoadingController::new(perf);
    let plan = controller.plan(6 * 512, 32, DeviceKind::NvmeSsd);
    println!(
        "controller: device={:?} ratio={:.2} predicted paper-scale TTFT={:.3}s\n",
        plan.device, plan.recompute_ratio, plan.ttft_s
    );

    // Online: serve the first few queries through the pipelined fusor.
    let mut total = 0.0f32;
    let n = 8;
    for (i, case) in ds.cases.iter().take(n).enumerate() {
        let ctx = ds.retrieve(case, 6);
        let parts: Vec<_> = ctx
            .iter()
            .map(|&c| {
                let (bytes, _tier) = store
                    .get_bytes(hash_tokens(&ds.chunks[c]))
                    .expect("retrieved chunk must be cached");
                bytes
            })
            .collect();
        let mut out = blend_pipelined(
            &model,
            BlendConfig::with_ratio(plan.recompute_ratio as f32),
            parts,
            &case.query,
            None,
        )
        .expect("pipelined blend");
        let pred = model.decode_greedy(&mut out.result.cache, &out.result.last_residual, 8);
        let score = ds.score(&pred, &case.gold);
        total += score;
        println!(
            "q{i}: {:<28} pred={:<12} gold={:<12} {}={:.2}  (loader wait {:?})",
            ds.vocab.render_seq(&case.query),
            ds.vocab.render_seq(&pred),
            ds.vocab.render_seq(&case.gold),
            ds.kind.metric_name(),
            score,
            out.report.wait,
        );
    }
    println!(
        "\nmean {} over {n} queries: {:.3}  (store stats: {:?})",
        ds.kind.metric_name(),
        total / n as f32,
        store.stats()
    );
}
