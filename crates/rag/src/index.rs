//! Exact L2 top-k vector search (the FAISS stand-in).

use cb_tensor::stats::l2_distance;

/// A flat vector index with exact search.
#[derive(Clone, Debug, Default)]
pub struct VectorIndex {
    dim: usize,
    vectors: Vec<Vec<f32>>,
}

impl VectorIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored vectors.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// True if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Adds a vector; its id is its insertion order.
    ///
    /// # Panics
    ///
    /// Panics on dimensionality mismatch.
    pub fn add(&mut self, v: Vec<f32>) -> usize {
        if self.vectors.is_empty() {
            self.dim = v.len();
        }
        assert_eq!(v.len(), self.dim, "vector dimension mismatch");
        self.vectors.push(v);
        self.vectors.len() - 1
    }

    /// The `k` nearest stored vectors by L2 distance, closest first
    /// (ties broken by lower id).
    pub fn search(&self, query: &[f32], k: usize) -> Vec<(usize, f32)> {
        let mut scored: Vec<(usize, f32)> = self
            .vectors
            .iter()
            .enumerate()
            .map(|(i, v)| (i, l2_distance(query, v)))
            .collect();
        scored.sort_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        scored.truncate(k);
        scored
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_exact_match_first() {
        let mut ix = VectorIndex::new();
        ix.add(vec![0.0, 0.0]);
        ix.add(vec![1.0, 1.0]);
        ix.add(vec![2.0, 2.0]);
        let hits = ix.search(&[1.0, 1.0], 2);
        assert_eq!(hits[0].0, 1);
        assert_eq!(hits[0].1, 0.0);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn k_larger_than_index_returns_all() {
        let mut ix = VectorIndex::new();
        ix.add(vec![0.0]);
        assert_eq!(ix.search(&[5.0], 10).len(), 1);
    }

    #[test]
    fn distances_are_sorted() {
        let mut ix = VectorIndex::new();
        for i in 0..10 {
            ix.add(vec![i as f32]);
        }
        let hits = ix.search(&[3.2], 5);
        assert!(hits.windows(2).all(|w| w[0].1 <= w[1].1));
        assert_eq!(hits[0].0, 3);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn rejects_wrong_dimension() {
        let mut ix = VectorIndex::new();
        ix.add(vec![0.0, 1.0]);
        ix.add(vec![0.0]);
    }
}
