//! A small persistent thread pool for intra-request parallelism.
//!
//! The kernels in this crate (row-range splits of [`crate::Matrix::matmul_into`])
//! and the per-head attention loop in `cb-model` push closures onto one
//! process-wide [`ThreadPool`] built on the vendored crossbeam channels.
//! Design points:
//!
//! - **Scoped borrows.** [`ThreadPool::run`] accepts closures borrowing the
//!   caller's stack and does not return until every one of them has
//!   finished, so the borrows stay valid (the lifetime is erased with one
//!   contained `unsafe` transmute — the completion barrier is what makes
//!   it sound).
//! - **Caller participation.** The submitting thread executes queued jobs
//!   itself while it waits, so a pool of `n` threads uses `n - 1` workers
//!   plus the caller and a pool of 1 degrades to plain serial execution.
//! - **No nesting.** Jobs that themselves reach a parallel region run it
//!   serially (a thread-local flag), so kernels can be called from inside
//!   attention head jobs without deadlock or oversubscription.
//! - **Determinism.** The pool only ever runs *disjoint* work items whose
//!   result layout is fixed by the caller (output row ranges, per-head
//!   buffers); nothing about scheduling order can change the bytes
//!   produced, which is what makes "pool size 1 vs N is bit-identical"
//!   testable at the engine level.
//! - **Panic containment.** A panicking job is caught on the worker, the
//!   barrier still completes, and the panic resumes on the caller.
//!
//! The global pool defaults to the machine's available parallelism;
//! [`set_threads`] reconfigures it (benchmarks pin 1 or 4).

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, unbounded, Receiver, Sender, TryRecvError};

/// A borrowing job: boxed closure tied to the caller's scope.
pub type Job<'scope> = Box<dyn FnOnce() + Send + 'scope>;

type Task = Box<dyn FnOnce() + Send + 'static>;

thread_local! {
    /// Set while this thread is executing a pool job (worker or helping
    /// caller): parallel regions entered under it run serially.
    static IN_POOL_JOB: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// A persistent pool of `threads - 1` workers plus the calling thread.
pub struct ThreadPool {
    threads: usize,
    tx: Option<Sender<Task>>,
    shared_rx: Arc<Mutex<Receiver<Task>>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ThreadPool({} threads)", self.threads)
    }
}

impl ThreadPool {
    /// Creates a pool that runs jobs on `threads` threads total (the
    /// caller counts as one; `threads - 1` workers are spawned). A value
    /// of 0 is clamped to 1.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (tx, rx) = unbounded::<Task>();
        let shared_rx = Arc::new(Mutex::new(rx));
        let workers = (1..threads)
            .map(|i| {
                let rx = Arc::clone(&shared_rx);
                std::thread::Builder::new()
                    .name(format!("cb-pool-{i}"))
                    .spawn(move || loop {
                        let task = {
                            let guard = rx.lock().unwrap_or_else(|e| e.into_inner());
                            guard.recv()
                        };
                        match task {
                            Ok(job) => run_job(job),
                            Err(_) => break, // pool dropped
                        }
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        Self {
            threads,
            tx: Some(tx),
            shared_rx,
            workers,
        }
    }

    /// Total threads (workers + caller) this pool runs jobs on.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every job to completion before returning; the caller executes
    /// queued jobs while it waits. Serial when the pool has one thread,
    /// a single job is given, or the caller is itself a pool job.
    pub fn run<'scope>(&self, jobs: Vec<Job<'scope>>) {
        let n = jobs.len();
        if n == 0 {
            return;
        }
        if self.threads <= 1 || n == 1 || IN_POOL_JOB.with(|f| f.get()) {
            for job in jobs {
                job();
            }
            return;
        }
        let (done_tx, done_rx) = bounded::<Option<Box<dyn std::any::Any + Send>>>(n);
        let tx = self.tx.as_ref().expect("pool alive");
        for job in jobs {
            let done = done_tx.clone();
            let task: Job<'scope> = Box::new(move || {
                let outcome = catch_unwind(AssertUnwindSafe(job)).err();
                let _ = done.send(outcome);
            });
            // SAFETY: the barrier below does not return until every task
            // has sent its completion, so the borrows captured by `job`
            // outlive its execution. Workers never hold tasks without
            // running them (a dropped pool drains by closing the channel
            // only after workers exit their loop).
            let task: Task = unsafe { std::mem::transmute(task) };
            let _ = tx.send(task);
        }
        drop(done_tx);

        // Help: execute queued tasks (ours or another caller's) until our
        // completion barrier fills.
        let mut completed = 0;
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        while completed < n {
            // try_lock: an idle worker blocks in recv *while holding* the
            // receiver mutex, so a blocking lock here could deadlock. If
            // the lock is busy, a worker owns the queue and we just wait
            // on the barrier.
            let task = match self.shared_rx.try_lock() {
                Ok(guard) => guard.try_recv(),
                Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner().try_recv(),
                Err(std::sync::TryLockError::WouldBlock) => Err(TryRecvError::Empty),
            };
            match task {
                Ok(job) => run_job(job),
                Err(TryRecvError::Empty | TryRecvError::Disconnected) => {
                    // Nothing to steal: block on the barrier.
                    match done_rx.recv() {
                        Ok(p) => {
                            completed += 1;
                            if let Some(p) = p {
                                panic = Some(p);
                            }
                        }
                        Err(_) => break, // all tasks accounted for
                    }
                    continue;
                }
            }
            // Drain any completions that arrived while helping.
            while let Ok(p) = done_rx.try_recv() {
                completed += 1;
                if let Some(p) = p {
                    panic = Some(p);
                }
            }
        }
        if let Some(p) = panic {
            resume_unwind(p);
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.tx.take(); // close the channel; workers exit on RecvError
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn run_job(job: Task) {
    IN_POOL_JOB.with(|f| f.set(true));
    job();
    IN_POOL_JOB.with(|f| f.set(false));
}

static GLOBAL: OnceLock<RwLock<Arc<ThreadPool>>> = OnceLock::new();

fn global() -> &'static RwLock<Arc<ThreadPool>> {
    GLOBAL.get_or_init(|| RwLock::new(Arc::new(ThreadPool::new(default_threads()))))
}

/// The machine's available parallelism (the global pool's default size).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// The process-wide pool used by the kernels. Clones of the `Arc` taken
/// before a [`set_threads`] call keep running on the old pool.
pub fn current() -> Arc<ThreadPool> {
    Arc::clone(&global().read().unwrap_or_else(|e| e.into_inner()))
}

/// Replaces the process-wide pool with one of `threads` threads. In-flight
/// parallel regions finish on the pool they started with; results are
/// bit-identical either way (see the module docs).
pub fn set_threads(threads: usize) {
    let mut guard = global().write().unwrap_or_else(|e| e.into_inner());
    if guard.threads() != threads.max(1) {
        *guard = Arc::new(ThreadPool::new(threads));
    }
}

/// Serializes tests that reconfigure the process-wide pool (both this
/// module's swap test and the matrix kernels' thread-sweep test mutate
/// the global; `cargo test` runs them concurrently).
#[cfg(test)]
pub(crate) static GLOBAL_POOL_TEST_LOCK: Mutex<()> = Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn run_executes_every_job_with_borrows() {
        let pool = ThreadPool::new(4);
        let mut out = vec![0usize; 64];
        {
            let jobs: Vec<Job<'_>> = out
                .chunks_mut(16)
                .enumerate()
                .map(|(i, chunk)| {
                    let job: Job<'_> = Box::new(move || {
                        for (j, v) in chunk.iter_mut().enumerate() {
                            *v = i * 100 + j;
                        }
                    });
                    job
                })
                .collect();
            pool.run(jobs);
        }
        assert_eq!(out[0], 0);
        assert_eq!(out[17], 101);
        assert_eq!(out[63], 315);
    }

    #[test]
    fn single_thread_pool_runs_serially() {
        let pool = ThreadPool::new(1);
        let counter = AtomicUsize::new(0);
        let jobs: Vec<Job<'_>> = (0..8)
            .map(|_| {
                let c = &counter;
                let job: Job<'_> = Box::new(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
                job
            })
            .collect();
        pool.run(jobs);
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn nested_regions_run_serially_without_deadlock() {
        let pool = ThreadPool::new(3);
        let counter = AtomicUsize::new(0);
        let jobs: Vec<Job<'_>> = (0..4)
            .map(|_| {
                let c = &counter;
                let p = &pool;
                let job: Job<'_> = Box::new(move || {
                    let inner: Vec<Job<'_>> = (0..4)
                        .map(|_| {
                            let c2 = c;
                            let j: Job<'_> = Box::new(move || {
                                c2.fetch_add(1, Ordering::Relaxed);
                            });
                            j
                        })
                        .collect();
                    p.run(inner);
                }) as Job<'_>;
                job
            })
            .collect();
        pool.run(jobs);
        assert_eq!(counter.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn panicking_job_propagates_after_barrier() {
        let pool = ThreadPool::new(2);
        let finished = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let jobs: Vec<Job<'_>> = (0..4)
                .map(|i| {
                    let f = &finished;
                    let job: Job<'_> = Box::new(move || {
                        if i == 2 {
                            panic!("boom");
                        }
                        f.fetch_add(1, Ordering::Relaxed);
                    });
                    job
                })
                .collect();
            pool.run(jobs);
        }));
        assert!(result.is_err(), "panic must propagate to the caller");
        assert_eq!(finished.load(Ordering::Relaxed), 3, "others still ran");
        // The pool remains usable afterwards.
        let counter = AtomicUsize::new(0);
        let jobs: Vec<Job<'_>> = (0..3)
            .map(|_| {
                let c = &counter;
                let job: Job<'_> = Box::new(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
                job
            })
            .collect();
        pool.run(jobs);
        assert_eq!(counter.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn set_threads_swaps_the_global_pool() {
        let _guard = GLOBAL_POOL_TEST_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        set_threads(2);
        assert_eq!(current().threads(), 2);
        set_threads(1);
        assert_eq!(current().threads(), 1);
    }
}
