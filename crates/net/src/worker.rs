//! The worker side of the control plane: wraps one [`EngineService`]
//! behind a [`Transport`] connection to the gateway.
//!
//! A worker runs two threads of its own plus one forwarder per in-flight
//! request:
//!
//! - the **control loop** serves gateway frames — `Submit` (admit or
//!   answer `Rejected` with a fresh probe), `RegisterChunk` (eager at the
//!   chunk's home: precompute + replicate to the persistent tier),
//!   `Status`, `Drain`, and `Shutdown`;
//! - the **heartbeat ticker** sends `Heartbeat { probe, stats }` every
//!   [`WorkerConfig::heartbeat_interval`] — the gateway's only liveness
//!   signal. Tests pause it ([`Worker::pause_heartbeats`]) to simulate a
//!   partition without killing the worker;
//! - each admitted request gets a **forwarder** thread that drains its
//!   [`ResponseStream`] and ships every event back as an `Ev` frame. A
//!   stream that closes without a terminal event (service shutdown)
//!   synthesizes `Failed(Canceled)` so the gateway's pending entry always
//!   resolves.

use crate::message::{Message, WireEvent, WireFailure};
use crate::transport::{NetError, Transport};
use cb_core::engine::EngineError;
use cb_core::scheduler::{EngineService, TrySubmitError};
use cb_core::stream::ResponseStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Worker tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct WorkerConfig {
    /// Heartbeat period. The gateway declares a worker down after
    /// [`crate::gateway::GatewayConfig::heartbeat_timeout`] without one,
    /// so keep this several times smaller.
    pub heartbeat_interval: Duration,
    /// Stable worker identity, or `None` to generate a fresh one (process
    /// entropy mixed with a process-local counter). A worker that
    /// reconnects under the same identity with a **higher incarnation**
    /// adopts its old gateway slot — chunk homes, health history, and
    /// admission stats carry over — instead of growing the roster.
    pub worker_id: Option<u64>,
    /// Connection generation under `worker_id`. Bump it on every
    /// reconnect: the gateway rejects hellos whose incarnation does not
    /// exceed the slot's current one, and drops frames from superseded
    /// connections.
    pub incarnation: u64,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        Self {
            heartbeat_interval: Duration::from_millis(50),
            worker_id: None,
            incarnation: 1,
        }
    }
}

impl WorkerConfig {
    /// Sets the heartbeat period.
    pub fn heartbeat_interval(mut self, d: Duration) -> Self {
        self.heartbeat_interval = d;
        self
    }

    /// Sets the stable identity (see [`WorkerConfig::worker_id`]).
    pub fn identity(mut self, worker_id: u64, incarnation: u64) -> Self {
        self.worker_id = Some(worker_id);
        self.incarnation = incarnation;
        self
    }
}

/// A fresh, effectively unique worker id: process entropy (pid + clock)
/// mixed with a process-local counter through SplitMix64.
pub(crate) fn fresh_worker_id() -> u64 {
    use std::sync::atomic::AtomicU64;
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let seed = nanos
        ^ (std::process::id() as u64).rotate_left(32)
        ^ COUNTER.fetch_add(1, Ordering::Relaxed).rotate_left(48);
    crate::gateway::splitmix64(seed)
}

struct WorkerInner {
    service: Arc<EngineService>,
    conn: Arc<dyn Transport>,
    identity: (u64, u64),
    hb_paused: AtomicBool,
    shutdown: AtomicBool,
    forwarders: Mutex<Vec<JoinHandle<()>>>,
}

impl WorkerInner {
    fn heartbeat(&self) -> Message {
        Message::Heartbeat {
            probe: self.service.probe(),
            stats: self.service.stats(),
        }
    }

    fn handle_submit(
        self: &Arc<Self>,
        id: u64,
        trace: u64,
        span: u64,
        blocking: bool,
        request: crate::message::WireRequest,
    ) {
        let mut request = request.into_request();
        // Re-attach the trace context the Submit frame carried so the
        // engine's spans nest under the gateway's serve-attempt span.
        request.trace = trace;
        request.trace_parent = span;
        cb_obs::cb_debug!(
            "worker",
            "submit id={id} trace={trace:#x} blocking={blocking} chunks={} query_tokens={}",
            request.chunk_ids.len(),
            request.query.len()
        );
        let outcome = if blocking {
            // Last-resort placement: the gateway found no queue with
            // space, so wait for ours to free up.
            Ok(self.service.submit_stream(request))
        } else {
            self.service.try_submit_stream(request)
        };
        match outcome {
            Ok(stream) => {
                let inner = Arc::clone(self);
                let handle = std::thread::spawn(move || inner.forward(id, trace, stream));
                let mut fwd = self.forwarders.lock().unwrap();
                // Reap finished forwarders so a long-lived worker's handle
                // list stays proportional to in-flight work.
                let (done, live): (Vec<_>, Vec<_>) = fwd.drain(..).partition(|h| h.is_finished());
                for h in done {
                    let _ = h.join();
                }
                *fwd = live;
                fwd.push(handle);
            }
            Err(TrySubmitError::QueueFull(_)) => {
                cb_obs::cb_debug!("worker", "reject id={id}: queue full");
                let _ = self.conn.send(&Message::Rejected {
                    id,
                    probe: self.service.probe(),
                });
            }
        }
    }

    fn forward(&self, id: u64, trace: u64, stream: ResponseStream) {
        let mut terminal = false;
        for ev in stream {
            terminal = terminal || ev.is_terminal();
            let msg = Message::Ev {
                id,
                trace,
                event: WireEvent::from_event(&ev),
            };
            if self.conn.send(&msg).is_err() {
                return; // Gateway gone; the engine still finishes locally.
            }
        }
        if !terminal {
            // Stream closed without Done/Failed (service shut down): the
            // gateway must not wait forever.
            let failure = WireFailure::from_error(&EngineError::Canceled);
            let _ = self.conn.send(&Message::Ev {
                id,
                trace,
                event: WireEvent::Failed(failure),
            });
        }
    }

    /// Answers a `Metrics` scrape: flushes store counters into the global
    /// registry, stamps this worker's instantaneous load into labeled
    /// gauges, and ships the encoded registry snapshot back.
    fn handle_metrics(&self, rpc: u64) {
        self.service.engine().store().publish_metrics();
        let probe = self.service.probe();
        let reg = cb_obs::metrics::Registry::global();
        let label = format!("{:016x}", self.identity.0);
        reg.gauge(&format!("cb_worker_queue_depth{{worker=\"{label}\"}}"))
            .set(probe.queue_depth as f64);
        reg.gauge(&format!("cb_worker_inflight{{worker=\"{label}\"}}"))
            .set(probe.inflight as f64);
        let _ = self.conn.send(&Message::MetricsReply {
            rpc,
            snapshot: reg.snapshot().encode(),
        });
    }

    fn control_loop(self: Arc<Self>, tick: Duration) {
        loop {
            if self.shutdown.load(Ordering::Relaxed) {
                return;
            }
            match self.conn.recv_timeout(tick) {
                Ok(Message::Submit {
                    id,
                    trace,
                    span,
                    blocking,
                    request,
                }) => self.handle_submit(id, trace, span, blocking, request),
                Ok(Message::RegisterChunk { rpc, eager, tokens }) => {
                    let engine = self.service.engine();
                    let result = if eager {
                        engine.register_chunk(&tokens).and_then(|id| {
                            engine
                                .store()
                                .replicate_to_persistent(id)
                                .map_err(EngineError::from)?;
                            Ok(id)
                        })
                    } else {
                        engine.register_chunk_lazy(&tokens)
                    };
                    let result = result
                        .map(|id| id.0)
                        .map_err(|e| WireFailure::from_error(&e));
                    let _ = self.conn.send(&Message::RegisterReply { rpc, result });
                }
                Ok(Message::Status { rpc }) => {
                    let _ = self.conn.send(&Message::StatusReply {
                        rpc,
                        probe: self.service.probe(),
                        stats: self.service.stats(),
                    });
                }
                Ok(Message::Metrics { rpc }) => self.handle_metrics(rpc),
                Ok(Message::Drain { rpc }) => {
                    while self.service.probe().load() > 0 && !self.shutdown.load(Ordering::Relaxed)
                    {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    let _ = self.conn.send(&Message::DrainReply { rpc });
                }
                Ok(Message::Shutdown) => return,
                Ok(_) => {} // Ignore frames this side never consumes.
                Err(NetError::Timeout) => {}
                Err(_) => return, // Connection dead.
            }
        }
    }

    fn heartbeat_loop(self: Arc<Self>, interval: Duration) {
        loop {
            std::thread::sleep(interval);
            if self.shutdown.load(Ordering::Relaxed) {
                return;
            }
            if self.hb_paused.load(Ordering::Relaxed) {
                continue;
            }
            if self.conn.send(&self.heartbeat()).is_err() {
                return;
            }
        }
    }
}

/// A running worker. Dropping it stops both threads (finishing in-flight
/// forwarders first) but leaves the wrapped service running — the owner
/// decides when the engine itself shuts down.
pub struct Worker {
    inner: Arc<WorkerInner>,
    control: Option<JoinHandle<()>>,
    heartbeat: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Worker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Worker")
            .field("peer", &self.inner.conn.peer())
            .finish()
    }
}

impl Worker {
    /// Connects a service to the gateway over `conn`: sends the
    /// `HelloWorker` announcement (synchronously, so the gateway's attach
    /// finds it) and starts the control + heartbeat threads.
    pub fn start(
        service: Arc<EngineService>,
        conn: Arc<dyn Transport>,
        cfg: WorkerConfig,
    ) -> Result<Worker, NetError> {
        let id = cfg.worker_id.unwrap_or_else(fresh_worker_id);
        conn.send(&Message::HelloWorker {
            id,
            incarnation: cfg.incarnation,
            probe: service.probe(),
            stats: service.stats(),
        })?;
        let inner = Arc::new(WorkerInner {
            service,
            conn,
            identity: (id, cfg.incarnation),
            hb_paused: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            forwarders: Mutex::new(Vec::new()),
        });
        let tick = cfg.heartbeat_interval.min(Duration::from_millis(50));
        let control = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("cb-net-worker-control".into())
                .spawn(move || inner.control_loop(tick))
                .map_err(|e| NetError::Io(e.to_string()))?
        };
        let heartbeat = {
            let inner = Arc::clone(&inner);
            let interval = cfg.heartbeat_interval;
            std::thread::Builder::new()
                .name("cb-net-worker-heartbeat".into())
                .spawn(move || inner.heartbeat_loop(interval))
                .map_err(|e| NetError::Io(e.to_string()))?
        };
        Ok(Worker {
            inner,
            control: Some(control),
            heartbeat: Some(heartbeat),
        })
    }

    /// The wrapped service.
    pub fn service(&self) -> &Arc<EngineService> {
        &self.inner.service
    }

    /// This worker's `(id, incarnation)` — reuse the id with a higher
    /// incarnation to re-attach into the same gateway slot.
    pub fn identity(&self) -> (u64, u64) {
        self.inner.identity
    }

    /// Pauses (or resumes) heartbeats without stopping the worker — the
    /// partition fault injection: the gateway sees silence while the
    /// worker keeps serving whatever it already admitted.
    pub fn pause_heartbeats(&self, paused: bool) {
        self.inner.hb_paused.store(paused, Ordering::Relaxed);
    }

    /// Blocks until the gateway ends the session (a `Shutdown` frame or a
    /// closed connection), then tears the worker down. The `cb_worker`
    /// binary's main thread parks here.
    pub fn run_until_disconnected(mut self) {
        if let Some(h) = self.control.take() {
            let _ = h.join();
        }
        // Drop does the rest (heartbeat thread, forwarders).
    }

    fn stop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.control.take() {
            let _ = h.join();
        }
        if let Some(h) = self.heartbeat.take() {
            let _ = h.join();
        }
        let handles: Vec<_> = self.inner.forwarders.lock().unwrap().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Worker {
    fn drop(&mut self) {
        self.stop();
    }
}
