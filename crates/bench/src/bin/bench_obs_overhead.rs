//! Asserts the cb-obs instrumentation overhead budget and emits
//! `target/experiments/BENCH_obs.json` (see DESIGN.md §10).
//!
//! ```text
//! bench_obs_overhead [--smoke]
//! ```
use cb_bench::experiments::obs_overhead::{run_opts, ObsOpts};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    run_opts(ObsOpts { smoke });
}
