//! CacheBlend's core: selective KV recompute with HKVD token selection,
//! positional re-alignment of cached keys, the loading controller, and the
//! pipelined loader.
//!
//! This crate is the paper's contribution (§4–§5). Given the standalone
//! per-chunk KV caches from `cb-kv` and the model primitives from
//! `cb-model`, the [`fusor::Fusor`] fuses them into one cache that matches
//! full-prefill quality by recomputing only the tokens whose KV deviates
//! most (High-KV-Deviation, HKVD, tokens), selected by gradual filtering
//! across layers (§4.3). The [`controller::LoadingController`] picks the
//! recompute ratio and storage device so loading hides recomputation (§5.1),
//! and [`pipeline`] overlaps the two with a real loader thread (§6).
//!
//! Modules:
//!
//! - [`deviation`] — Δkv and Δattn metrics (Table 1) and oracle comparisons.
//! - [`rope_align`] — Appendix-A re-rotation of cached keys to new positions.
//! - [`fusor`] — selective KV recompute (§4.2) + HKVD selection (§4.3).
//! - [`controller`] — recompute-ratio and device selection (§5.1).
//! - [`pipeline`] — layer-streaming loader overlapped with recompute (§6).
//! - [`engine`] — the request/response serving front door tying the above
//!   to the tiered KV store (`register_chunk` → `submit`/`submit_many`).
//! - [`scheduler`] — the persistent [`EngineService`]: bounded admission
//!   queue with priority lanes, long-lived worker pool, backpressure.
//! - [`stream`] — the per-request [`Event`] lifecycle and
//!   [`ResponseStream`] (`Queued → Admitted → FirstToken → Token* → Done`).

pub mod controller;
pub mod deviation;
pub mod engine;
pub mod fusor;
pub mod pipeline;
pub mod rope_align;
pub mod scheduler;
pub mod stream;

pub use controller::LoadingController;
pub use engine::{
    DiskLayout, Engine, EngineBuilder, EngineError, Priority, RatioPolicy, Request, Response,
    TtftBreakdown,
};
pub use fusor::{BlendConfig, BlendResult, Fusor, Selection};
pub use scheduler::{EngineService, ServiceConfig, ServiceStats, TrySubmitError};
pub use stream::{Event, ResponseStream};
