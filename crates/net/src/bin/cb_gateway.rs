//! `cb_gateway`: the cluster coordinator process. Listens for worker and
//! client connections, routes submissions by chunk locality, and (with
//! `--smoke`) self-checks one request end-to-end through a real TCP
//! client session, exiting 0 on success.
//!
//! ```text
//! cb_gateway --listen 127.0.0.1:7070 --expect-workers 2 [--smoke [--chaos]]
//! cb_gateway --listen 127.0.0.1:7071 --standby 127.0.0.1:7070 [--expect-workers 2]
//! ```
//!
//! `--standby PRIMARY` runs the warm-standby role instead: mirror the
//! primary's journal/chunks/roster over its replication feed, and when
//! the primary goes silent (or its connection closes), **take over** —
//! bind `--listen`, inherit the roster as placeholder slots (chunk homes
//! unchanged), and serve workers re-attaching under `--retry-attach`
//! plus clients resuming by request id.
//!
//! `--chaos` extends the smoke into a fault drill: it keeps a stream of
//! concurrent requests in flight for several seconds while an **external
//! injector** (the CI script) SIGKILLs one worker mid-run, then asserts
//! that every request still completed and that at least one mid-stream
//! retry happened. Run it without killing a worker and it exits 1 — the
//! drill is meaningless without the fault.
//!
//! CI runs the smoke as: start `cb_gateway … --smoke` plus two
//! `cb_worker` processes, then wait on the gateway's exit status.

use cb_core::engine::Request;
use cb_net::client::NetClient;
use cb_net::gateway::{Gateway, GatewayConfig};
use cb_net::standby::Standby;
use cb_net::tcp::TcpTransport;
use cb_obs::{cb_error, cb_info, cb_warn};
use cb_tokenizer::{TokenId, TokenKind, Vocab};
use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn usage() -> ! {
    eprintln!(
        "usage: cb_gateway --listen ADDR [--expect-workers N] [--smoke [--chaos]] [--standby PRIMARY_ADDR]"
    );
    std::process::exit(2);
}

/// Starts the accept loop on `listener`, handing every connection —
/// worker, client, or standby — to the gateway.
fn serve(gateway: &Arc<Gateway>, listener: TcpListener) {
    let gateway = Arc::clone(gateway);
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { continue };
            match TcpTransport::from_stream(stream) {
                Ok(t) => match gateway.accept(Arc::new(t)) {
                    Ok(accepted) => cb_info!("gateway", "accepted {accepted:?}"),
                    Err(e) => cb_warn!("gateway", "rejected connection: {e}"),
                },
                Err(e) => cb_warn!("gateway", "connection setup failed: {e}"),
            }
        }
    });
}

fn wait_for_workers(gateway: &Gateway, expect: usize) {
    let deadline = Instant::now() + Duration::from_secs(60);
    while gateway.n_workers() < expect {
        if Instant::now() > deadline {
            cb_error!(
                "gateway",
                "only {}/{} workers attached within 60s",
                gateway.n_workers(),
                expect
            );
            std::process::exit(1);
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    cb_info!("gateway", "{} workers attached", gateway.n_workers());
}

fn eval_chunk_and_query(v: &Vocab) -> (Vec<TokenId>, Vec<TokenId>) {
    let chunk = vec![
        v.id(TokenKind::Entity(3)),
        v.id(TokenKind::Attr(1)),
        v.id(TokenKind::Value(7)),
        v.id(TokenKind::Sep),
    ];
    let query = vec![
        v.id(TokenKind::Query),
        v.id(TokenKind::Entity(3)),
        v.id(TokenKind::Attr(1)),
        v.id(TokenKind::QMark),
    ];
    (chunk, query)
}

/// The chaos drill (see module docs): concurrent requests across a
/// worker kill, every one must complete, at least one must have been
/// transparently retried.
fn chaos_smoke(gateway: &Gateway, client: &NetClient) {
    let v = Vocab::default_eval();
    let (chunk, query) = eval_chunk_and_query(&v);
    let id = client
        .register_chunk(&chunk, true)
        .expect("chunk registers cluster-wide");
    let window = Duration::from_secs(6);
    let start = Instant::now();
    let mut completed = 0u64;
    let mut failed = 0u64;
    while start.elapsed() < window {
        // Waves of 4 concurrent streams: enough overlap that the kill
        // lands mid-stream for some of them.
        let streams: Vec<_> = (0..4)
            .map(|_| {
                client.submit_stream(
                    &Request::new(vec![id], query.clone())
                        .ratio(0.45)
                        .max_new_tokens(12),
                )
            })
            .collect();
        for s in streams {
            match s.collect() {
                Ok(resp) => {
                    assert!(!resp.answer.is_empty(), "chaos request produced no tokens");
                    completed += 1;
                }
                Err(e) => {
                    cb_warn!("gateway", "chaos: request failed: {e}");
                    failed += 1;
                }
            }
        }
    }
    let stats = gateway.stats();
    println!(
        "{{\"chaos\": true, \"completed\": {completed}, \"failed\": {failed}, \
         \"retries\": {}, \"failovers\": {}}}",
        stats.retries, stats.failovers
    );
    if failed > 0 {
        cb_error!("gateway", "chaos: {failed} requests failed");
        std::process::exit(1);
    }
    if stats.retries == 0 {
        cb_error!(
            "gateway",
            "chaos: no mid-stream retry happened — was a worker actually killed?"
        );
        std::process::exit(1);
    }
    println!(
        "cb_gateway chaos OK: {completed} requests survived the kill ({} retries)",
        stats.retries
    );
}

fn main() {
    let mut listen = "127.0.0.1:7070".to_string();
    let mut expect = 1usize;
    let mut smoke = false;
    let mut chaos = false;
    let mut standby_of: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => listen = args.next().unwrap_or_else(|| usage()),
            "--expect-workers" => {
                expect = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--smoke" => smoke = true,
            "--chaos" => chaos = true,
            "--standby" => standby_of = args.next(),
            _ => usage(),
        }
    }
    if chaos && !smoke {
        cb_error!("gateway", "--chaos requires --smoke");
        usage();
    }

    let gateway = if let Some(primary) = standby_of {
        // Standby role: mirror until the primary dies, then take over.
        let conn = TcpTransport::connect(&primary).unwrap_or_else(|e| {
            cb_error!("gateway", "cannot reach primary {primary}: {e}");
            std::process::exit(1);
        });
        let standby =
            Standby::connect(Arc::new(conn), GatewayConfig::default()).unwrap_or_else(|e| {
                cb_error!("gateway", "standby handshake with {primary} failed: {e}");
                std::process::exit(1);
            });
        cb_info!("gateway", "standing by for {primary}");
        let gateway = Arc::new(standby.wait_takeover());
        cb_info!(
            "gateway",
            "primary {primary} died; taking over with {} roster slots",
            gateway.n_workers()
        );
        gateway
    } else {
        Arc::new(Gateway::new(GatewayConfig::default()))
    };

    let listener = TcpListener::bind(&listen).unwrap_or_else(|e| {
        cb_error!("gateway", "cannot bind {listen}: {e}");
        std::process::exit(1);
    });
    let addr = listener.local_addr().expect("bound address");
    cb_info!("gateway", "listening on {addr}");
    serve(&gateway, listener);
    wait_for_workers(&gateway, expect);

    if !smoke {
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }

    // Smoke: drive requests through a real client connection — the exact
    // path an external process uses.
    let client = NetClient::connect(Arc::new(TcpTransport::connect(addr).expect("self-connect")))
        .expect("client handshake");

    if chaos {
        chaos_smoke(&gateway, &client);
        drop(client);
        return;
    }

    let v = Vocab::default_eval();
    let (chunk, query) = eval_chunk_and_query(&v);
    let id = client
        .register_chunk(&chunk, true)
        .expect("chunk registers cluster-wide");
    let smoke_requests = 3u64;
    let mut answer_tokens = 0;
    let mut last_ttft = Duration::ZERO;
    for _ in 0..smoke_requests {
        let resp = client
            .submit(
                &Request::new(vec![id], query.clone())
                    .ratio(0.45)
                    .max_new_tokens(4),
            )
            .expect("smoke request completes");
        assert!(!resp.answer.is_empty(), "smoke request produced no tokens");
        answer_tokens = resp.answer.len();
        last_ttft = resp.ttft.total;
    }
    let (healthy, _) = client.cluster_status().expect("status RPC");
    assert!(
        healthy.iter().all(|&h| h),
        "all workers healthy after smoke"
    );
    // Mid-run scrape: the aggregated registry must see every request this
    // smoke completed, with a coherent TTFT distribution.
    let snap = client.scrape().expect("metrics scrape RPC");
    let completed = snap.counter("cb_requests_completed_total").unwrap_or(0);
    let submitted = snap.counter("cb_requests_submitted_total").unwrap_or(0);
    assert!(
        completed >= smoke_requests,
        "scrape saw {completed} completed requests, expected >= {smoke_requests}"
    );
    assert_eq!(
        submitted, completed,
        "every submitted request must have completed"
    );
    let ttft = snap
        .hist("cb_ttft_seconds")
        .expect("ttft histogram present in scrape");
    assert!(ttft.count >= smoke_requests, "ttft histogram undercounts");
    let (p50, p99) = (ttft.quantile_seconds(0.50), ttft.quantile_seconds(0.99));
    assert!(
        p99 >= p50 && p50 > 0.0,
        "ttft percentiles incoherent: p50={p50} p99={p99}"
    );
    println!(
        "cb_gateway smoke OK: {} workers, {} answer tokens, ttft {:?}, \
         scrape: {completed} completed, ttft p50 {:.3}ms p99 {:.3}ms",
        healthy.len(),
        answer_tokens,
        last_ttft,
        p50 * 1e3,
        p99 * 1e3,
    );
    drop(client);
    // Process exit closes every worker connection; workers observe the
    // close and exit on their own.
}
