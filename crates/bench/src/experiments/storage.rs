//! Tiered-storage TTFT: pipelined streaming vs unpipelined load vs full
//! prefill, across the §5.2 device bandwidth grid.
//!
//! Chunk KV entries live on a *real* disk tier (`cb-storage`'s
//! [`DiskBackend`] segment files) throttled to each catalogue device's
//! bandwidth/latency with real sleeps. Three arms serve the same request:
//!
//! - **pipelined** — `KvStore::prefetch` handles streamed through
//!   [`blend_prefetched`]: the device read of layer *i+1* overlaps the
//!   selective recompute of layer *i* (the paper's §5.2 pipeline).
//! - **unpipelined** — read each entry in full (throttled), then blend:
//!   the load sits entirely on the critical path (Figure 10(a)'s
//!   ablation).
//! - **full_prefill** — no cache at all: recompute the whole context.
//!
//! **Device emulation.** The scaled models' KV entries are ~10× smaller
//! per token than the paper's (fewer layers, narrower heads, fp32), so
//! running the catalogue devices at face value would make every load
//! trivially fast. Each device's bandwidth is instead scaled by
//! `our KV bytes/token ÷ paper KV bytes/token` (Mistral-7B: 128 KiB/token),
//! which makes the *per-token load time* on the emulated device equal the
//! real device's — the load side of the §5.2 load/compute race is
//! paper-faithful even though both sides are scaled.
//!
//! The headline metric is `hidden_frac`: the share of the *measured* raw
//! disk load time the pipeline removed from TTFT,
//! `(unpipelined − pipelined) / raw_load`. On a device whose load time is
//! at or below the blend's compute time the pipeline hides (nearly) all of
//! it; on very slow devices the residual `load − compute` stays exposed,
//! exactly as §5.2 predicts.
//!
//! Output lands in `target/experiments/BENCH_storage.json`.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use cb_core::fusor::{BlendConfig, Fusor};
use cb_core::pipeline::{blend_prefetched, serialize_chunks};
use cb_kv::store::TierConfig;
use cb_kv::{ChunkId, KvStore};
use cb_model::{KvCache, Model, ModelConfig, ModelProfile};
use cb_storage::{DeviceKind, DiskBackend, MemBackend, StorageBackend, Throttle};
use cb_tokenizer::{TokenId, TokenKind};

use crate::out::{emit, Row};

/// Options for the storage experiment.
#[derive(Clone, Debug, Default)]
pub struct StorageOpts {
    /// Shrunken sizes/repetitions (seconds, for CI).
    pub smoke: bool,
    /// Root directory for the throwaway cache dirs (default: a per-process
    /// directory under the system tempdir).
    pub dir: Option<PathBuf>,
}

struct Workload {
    chunks: usize,
    chunk_tokens: usize,
    query_tokens: usize,
    reps: usize,
}

impl Workload {
    fn new(smoke: bool) -> Self {
        if smoke {
            Self {
                chunks: 2,
                chunk_tokens: 24,
                query_tokens: 8,
                reps: 1,
            }
        } else {
            // Paper-shaped retrieval: four 256-token chunks + a short query
            // (fig. 12 runs six 512-token chunks; four 256s keep the sweep
            // under a minute while preserving the load/compute balance).
            Self {
                chunks: 4,
                chunk_tokens: 256,
                query_tokens: 16,
                reps: 3,
            }
        }
    }
}

fn filler_tokens(model: &Model, n: usize, salt: usize) -> Vec<TokenId> {
    let v = &model.cfg.vocab;
    (0..n)
        .map(|i| v.id(TokenKind::Filler(((i + salt) % 8) as u32)))
        .collect()
}

/// A tiny-RAM + throttled-disk store: every entry is disk-resident (the
/// RAM tier is below one entry, so promotion is impossible and each arm
/// measures genuine device reads). `bandwidth_scale` maps the catalogue
/// device's bandwidth onto the scaled models' entry sizes (see module
/// docs).
fn disk_resident_store(dir: &std::path::Path, device: DeviceKind, bandwidth_scale: f64) -> KvStore {
    let spec = device.spec();
    let throttle = Throttle {
        latency_s: spec.latency_s,
        bytes_per_s: spec.read_bytes_per_s * bandwidth_scale,
    };
    KvStore::with_backends(vec![
        (
            TierConfig {
                label: "ram".into(),
                capacity: 64,
            },
            Arc::new(MemBackend::new()) as Arc<dyn StorageBackend>,
        ),
        (
            TierConfig {
                label: spec.name.to_string(),
                capacity: 1 << 32,
            },
            Arc::new(DiskBackend::new(dir, Some(throttle)).expect("cache dir")),
        ),
    ])
}

struct ArmTimes {
    full_prefill_s: f64,
    unpipelined_s: f64,
    pipelined_s: f64,
    raw_load_s: f64,
}

fn best<T, F: FnMut() -> (f64, T)>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        best = best.min(f().0);
    }
    best
}

fn run_device(
    model: &Model,
    store: &KvStore,
    ids: &[ChunkId],
    full_tokens: &[TokenId],
    query: &[TokenId],
    w: &Workload,
) -> ArmTimes {
    let cfg = BlendConfig::default(); // the paper's r* = 15 %

    let full_prefill_s = best(w.reps, || {
        let t = Instant::now();
        let (cache, x) = model.prefill(full_tokens);
        std::hint::black_box(x.max_abs());
        (t.elapsed().as_secs_f64(), cache.len())
    });

    let mut raw_load_s = f64::INFINITY;
    let mut unpipelined_s = f64::INFINITY;
    for _ in 0..w.reps.max(1) {
        let t = Instant::now();
        let parts: Vec<KvCache> = ids
            .iter()
            .map(|&id| store.get(id).expect("clean entry").expect("resident").0)
            .collect();
        let load = t.elapsed().as_secs_f64();
        let out = Fusor::new(model, cfg).blend(parts, query, false);
        std::hint::black_box(out.last_residual[0]);
        let total = t.elapsed().as_secs_f64();
        raw_load_s = raw_load_s.min(load);
        unpipelined_s = unpipelined_s.min(total);
    }

    let pipelined_s = best(w.reps, || {
        let t = Instant::now();
        let handles: Vec<_> = ids
            .iter()
            .map(|&id| store.prefetch(id).expect("clean entry").expect("resident"))
            .collect();
        let out = blend_prefetched(model, cfg, handles, query, None).expect("blend");
        std::hint::black_box(out.result.last_residual[0]);
        (t.elapsed().as_secs_f64(), out.report.wait)
    });

    ArmTimes {
        full_prefill_s,
        unpipelined_s,
        pipelined_s,
        raw_load_s,
    }
}

/// Runs the experiment with default options.
pub fn run() {
    run_opts(StorageOpts::default());
}

/// Runs the experiment; returns the best `hidden_frac` measured on the
/// largest profile (the acceptance metric).
pub fn run_opts(opts: StorageOpts) -> f64 {
    let w = Workload::new(opts.smoke);
    let root = opts.dir.unwrap_or_else(|| {
        std::env::temp_dir().join(format!("cb-bench-storage-{}", std::process::id()))
    });
    let devices = [
        DeviceKind::CpuRam,
        DeviceKind::NvmeSsd,
        DeviceKind::CommoditySsd,
        DeviceKind::SlowSsd,
    ];
    // Per-token load times are made paper-faithful against Mistral-7B's
    // 128 KiB/token KV footprint (see module docs).
    let paper_bytes_per_token =
        cb_storage::PerfModel::on_a40(cb_storage::PaperModel::Mistral7B).total_kv_bytes(1);
    let profiles: &[(&str, ModelProfile)] = if opts.smoke {
        &[("Small", ModelProfile::Tiny)]
    } else {
        &[
            ("Small", ModelProfile::Tiny),
            ("Standard", ModelProfile::Mistral7B),
        ]
    };

    let mut rows = Vec::new();
    let mut headline = 0.0f64;
    for &(pname, profile) in profiles {
        let model = Model::random(ModelConfig::standard(profile, 7));
        let chunks: Vec<Vec<TokenId>> = (0..w.chunks)
            .map(|c| filler_tokens(&model, w.chunk_tokens, c))
            .collect();
        let bytes = serialize_chunks(&model, &chunks);
        let entry_bytes: usize = bytes.iter().map(|b| b.len()).sum();
        let query = filler_tokens(&model, w.query_tokens, 5);
        let mut full_tokens = vec![model.cfg.vocab.id(TokenKind::Bos)];
        for c in &chunks {
            full_tokens.extend_from_slice(c);
        }
        full_tokens.extend_from_slice(&query);

        // Untimed warmup: first-touch effects (lazy allocs, page faults)
        // must not land inside whichever device arm happens to run first.
        {
            let parts: Vec<KvCache> = bytes
                .iter()
                .map(|b| cb_kv::serialize::decode(b.clone()).expect("clean entry"))
                .collect();
            let out = Fusor::new(&model, BlendConfig::default()).blend(parts, &query, false);
            std::hint::black_box(out.last_residual[0]);
            let (_, x) = model.prefill(&full_tokens);
            std::hint::black_box(x.max_abs());
        }

        let ctx_tokens = w.chunks * w.chunk_tokens;
        let bandwidth_scale = (entry_bytes as f64 / ctx_tokens as f64) / paper_bytes_per_token;
        for device in devices {
            let dir = root.join(format!("{pname}-{}", device.spec().name));
            let _ = std::fs::remove_dir_all(&dir);
            let store = disk_resident_store(&dir, device, bandwidth_scale);
            let ids: Vec<ChunkId> = bytes
                .iter()
                .enumerate()
                .map(|(i, b)| {
                    let id = ChunkId(i as u64 + 1);
                    store.insert_bytes(id, b.clone()).expect("fits on disk");
                    id
                })
                .collect();
            store.flush().expect("flusher healthy");

            let t = run_device(&model, &store, &ids, &full_tokens, &query, &w);
            let hidden = ((t.unpipelined_s - t.pipelined_s) / t.raw_load_s).clamp(0.0, 1.0);
            if pname == profiles.last().expect("non-empty").0 {
                headline = headline.max(hidden);
            }
            rows.push(
                Row::new("storage")
                    .col("profile", pname)
                    .col("device", device.spec().name)
                    .num("bandwidth_gb_s", device.spec().read_bytes_per_s / 1e9)
                    .num("kv_bytes_mb", entry_bytes as f64 / 1e6)
                    .num("full_prefill_ms", t.full_prefill_s * 1e3)
                    .num("unpipelined_ms", t.unpipelined_s * 1e3)
                    .num("pipelined_ms", t.pipelined_s * 1e3)
                    .num("raw_load_ms", t.raw_load_s * 1e3)
                    .num("hidden_frac", hidden)
                    .num("speedup_vs_prefill", t.full_prefill_s / t.pipelined_s),
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    let _ = std::fs::remove_dir_all(&root);
    emit("BENCH_storage", &rows);
    println!(
        "\npipelining hid {:.0}% of raw disk load time at best (largest profile)",
        headline * 100.0
    );
    headline
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_consistent_arms() {
        // One smoke pass on the Tiny profile: the pipelined arm must never
        // lose to the unpipelined arm by more than scheduling noise, and
        // hidden_frac must be finite.
        let dir = std::env::temp_dir().join(format!(
            "cb-storage-exp-test-{}-{}",
            std::process::id(),
            line!()
        ));
        let hidden = run_opts(StorageOpts {
            smoke: true,
            dir: Some(dir),
        });
        assert!((0.0..=1.0).contains(&hidden));
    }
}
