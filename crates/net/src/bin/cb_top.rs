//! `cb_top` — a live terminal dashboard over a running gateway.
//!
//! Polls [`NetClient::scrape`] (the cluster-aggregated metrics registry)
//! and [`NetClient::cluster_status`] every interval and renders goodput,
//! TTFT percentiles, per-worker health/load, KV tier hit rates, gateway
//! retry/failover counters, and compaction activity. Rates are deltas
//! between consecutive scrapes; totals are lifetime.
//!
//! ```text
//! cb_top --gateway 127.0.0.1:7070              # live, 1s refresh
//! cb_top --gateway 127.0.0.1:7070 --once       # one plain-text frame
//! cb_top --gateway a:7070 --gateway b:7071     # failover endpoint list
//! ```

use cb_net::client::NetClient;
use cb_net::retry::RetryPolicy;
use cb_obs::metrics::MetricsSnapshot;
use std::time::{Duration, Instant};

struct Opts {
    endpoints: Vec<String>,
    interval: Duration,
    once: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: cb_top --gateway HOST:PORT [--gateway HOST:PORT ...] \
         [--interval-ms N] [--once]"
    );
    std::process::exit(2);
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        endpoints: Vec::new(),
        interval: Duration::from_millis(1000),
        once: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--gateway" => match args.next() {
                Some(ep) => opts.endpoints.push(ep),
                None => usage(),
            },
            "--interval-ms" => {
                let ms = args.next().and_then(|v| v.parse::<u64>().ok());
                match ms {
                    Some(ms) => opts.interval = Duration::from_millis(ms.max(50)),
                    None => usage(),
                }
            }
            "--once" => opts.once = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }
    if opts.endpoints.is_empty() {
        usage();
    }
    opts
}

/// The previous frame's counter values, for rate computation.
struct Prev {
    at: Instant,
    completed: u64,
    tokens: u64,
    hits: u64,
    misses: u64,
}

fn counter(snap: &MetricsSnapshot, name: &str) -> u64 {
    snap.counter(name).unwrap_or(0)
}

fn rate(now: u64, then: u64, dt: f64) -> f64 {
    if dt <= 0.0 {
        0.0
    } else {
        now.saturating_sub(then) as f64 / dt
    }
}

fn render(
    snap: &MetricsSnapshot,
    health: &[(bool, usize, usize, usize)],
    prev: Option<&Prev>,
    now: Instant,
) -> String {
    let mut out = String::new();
    let completed = counter(snap, "cb_requests_completed_total");
    let tokens = counter(snap, "cb_tokens_total");
    let hits = counter(snap, "cb_store_hits_total");
    let misses = counter(snap, "cb_store_misses_total");

    let (req_s, tok_s, hit_window) = match prev {
        Some(p) => {
            let dt = now.duration_since(p.at).as_secs_f64();
            let dh = hits.saturating_sub(p.hits);
            let dm = misses.saturating_sub(p.misses);
            let window = if dh + dm > 0 {
                dh as f64 / (dh + dm) as f64
            } else {
                f64::NAN
            };
            (
                rate(completed, p.completed, dt),
                rate(tokens, p.tokens, dt),
                window,
            )
        }
        None => (f64::NAN, f64::NAN, f64::NAN),
    };

    out.push_str("cb_top — CacheBlend cluster\n\n");

    // -- throughput --------------------------------------------------------
    out.push_str(&format!(
        "  requests  completed {completed:>8}   failed {:>6}   rejected {:>6}   canceled {:>6}\n",
        counter(snap, "cb_requests_failed_total"),
        counter(snap, "cb_requests_rejected_total"),
        counter(snap, "cb_requests_canceled_total"),
    ));
    if req_s.is_nan() {
        out.push_str("  goodput   (first frame — rates need two scrapes)\n");
    } else {
        out.push_str(&format!(
            "  goodput   {req_s:>10.1} req/s   {tok_s:>10.1} tok/s\n"
        ));
    }
    out.push_str(&format!(
        "  deadline misses {:>6}   tokens total {:>10}\n",
        counter(snap, "cb_deadline_misses_total"),
        tokens,
    ));

    // -- latency -----------------------------------------------------------
    out.push('\n');
    for (label, name) in [
        ("ttft      ", "cb_ttft_seconds"),
        ("queue wait", "cb_queue_wait_seconds"),
        ("decode/tok", "cb_decode_token_seconds"),
    ] {
        match snap.hist(name) {
            Some(h) if h.count > 0 => out.push_str(&format!(
                "  {label}  p50 {:>9.3}ms  p90 {:>9.3}ms  p99 {:>9.3}ms  p999 {:>9.3}ms  (n={})\n",
                h.quantile_seconds(0.50) * 1e3,
                h.quantile_seconds(0.90) * 1e3,
                h.quantile_seconds(0.99) * 1e3,
                h.quantile_seconds(0.999) * 1e3,
                h.count,
            )),
            _ => out.push_str(&format!("  {label}  (no samples)\n")),
        }
    }

    // -- workers -----------------------------------------------------------
    out.push('\n');
    out.push_str("  worker   health   queue   inflight   capacity\n");
    for (i, &(healthy, queue, inflight, capacity)) in health.iter().enumerate() {
        out.push_str(&format!(
            "  {i:>6}   {}   {queue:>5}   {inflight:>8}   {capacity:>8}\n",
            if healthy { "  up  " } else { " DOWN " },
        ));
    }

    // -- kv tiers ----------------------------------------------------------
    let lookups = hits + misses;
    let lifetime_hit = if lookups > 0 {
        hits as f64 / lookups as f64
    } else {
        f64::NAN
    };
    out.push('\n');
    out.push_str(&format!(
        "  kv        hits {hits:>9}   misses {misses:>8}   hit rate {:>6}   window {:>6}\n",
        pct(lifetime_hit),
        pct(hit_window),
    ));
    out.push_str(&format!(
        "  tiers     spills {:>7}   promotions {:>5}   quantized {:>6}   evictions {:>6}\n",
        counter(snap, "cb_store_spills_total"),
        counter(snap, "cb_store_promotions_total"),
        counter(snap, "cb_store_quantizations_total"),
        counter(snap, "cb_store_evictions_total"),
    ));
    let compactions = counter(snap, "cb_store_compactions_total");
    let reclaimed = counter(snap, "cb_store_compaction_reclaimed_bytes_total");
    match snap.hist("cb_compaction_seconds") {
        Some(h) if h.count > 0 => out.push_str(&format!(
            "  compact   passes {compactions:>7}   reclaimed {:>9}   pass p50 {:.3}ms\n",
            human_bytes(reclaimed),
            h.quantile_seconds(0.50) * 1e3,
        )),
        _ => out.push_str(&format!(
            "  compact   passes {compactions:>7}   reclaimed {:>9}\n",
            human_bytes(reclaimed),
        )),
    }

    // -- gateway -----------------------------------------------------------
    out.push('\n');
    out.push_str(&format!(
        "  gateway   retries {:>6}   failovers {:>5}   adoptions {:>5}   takeovers {:>4}\n",
        counter(snap, "cb_gateway_retries_total"),
        counter(snap, "cb_gateway_failovers_total"),
        counter(snap, "cb_gateway_adoptions_total"),
        counter(snap, "cb_gateway_takeovers_total"),
    ));
    out.push_str(&format!(
        "            spills {:>7}   reroutes {:>6}   rejections {:>4}   locality {:>5}\n",
        counter(snap, "cb_gateway_spills_total"),
        counter(snap, "cb_gateway_reroutes_total"),
        counter(snap, "cb_gateway_rejections_total"),
        pct({
            let lookups = counter(snap, "cb_gateway_chunk_lookups_total");
            if lookups > 0 {
                counter(snap, "cb_gateway_chunk_local_total") as f64 / lookups as f64
            } else {
                f64::NAN
            }
        }),
    ));
    out
}

fn pct(f: f64) -> String {
    if f.is_nan() {
        "  --  ".into()
    } else {
        format!("{:5.1}%", f * 100.0)
    }
}

fn human_bytes(b: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = b as f64;
    let mut u = 0;
    while v >= 1024.0 && u + 1 < UNITS.len() {
        v /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{b} B")
    } else {
        format!("{v:.1} {}", UNITS[u])
    }
}

fn main() {
    let opts = parse_opts();
    let client = match NetClient::connect_endpoints(&opts.endpoints, RetryPolicy::default()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cb_top: cannot reach a gateway: {e}");
            std::process::exit(1);
        }
    };
    let mut prev: Option<Prev> = None;
    loop {
        let snap = match client.scrape() {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cb_top: scrape failed: {e}");
                std::process::exit(1);
            }
        };
        let health: Vec<(bool, usize, usize, usize)> = match client.cluster_status() {
            Ok((healthy, probes)) => healthy
                .into_iter()
                .zip(probes)
                .map(|(h, p)| (h, p.queue_depth, p.inflight, p.queue_capacity))
                .collect(),
            Err(_) => Vec::new(),
        };
        let now = Instant::now();
        let frame = render(&snap, &health, prev.as_ref(), now);
        if opts.once {
            print!("{frame}");
            return;
        }
        // ANSI: home + clear-to-end, so the frame repaints in place.
        print!("\x1b[H\x1b[2J{frame}");
        use std::io::Write;
        let _ = std::io::stdout().flush();
        prev = Some(Prev {
            at: now,
            completed: counter(&snap, "cb_requests_completed_total"),
            tokens: counter(&snap, "cb_tokens_total"),
            hits: counter(&snap, "cb_store_hits_total"),
            misses: counter(&snap, "cb_store_misses_total"),
        });
        std::thread::sleep(opts.interval);
    }
}
