//! The control plane's message catalogue and its byte codec.
//!
//! Every [`Message`] encodes to a little-endian byte payload (carried
//! inside one [`crate::frame`] frame). The codec is hand-rolled like
//! `cb-kv::serialize`: a tag byte selects the variant, fixed-width
//! integers and length-prefixed vectors follow. Decoding is defensive —
//! **every length field is validated against the bytes actually
//! remaining before any allocation**, so a corrupted or hostile payload
//! can neither panic the decoder nor make it over-allocate.
//!
//! Lossy conversions are explicit: a [`WireResponse`] carries the
//! answer, timing, provenance, and blend statistics of a
//! [`Response`], but not the fused KV cache itself (megabytes of
//! per-layer matrices that no remote caller consumes — they exist for
//! continued decoding *on the worker*). Reconstruction stubs the cache
//! empty; everything tests and benches assert on survives the trip.

use cb_core::engine::{
    ChunkSource, EngineError, ErrorCode, Priority, Request, Response, TtftBreakdown,
};
use cb_core::fusor::{BlendResult, BlendStats};
use cb_core::scheduler::{ServiceProbe, ServiceStats};
use cb_core::stream::Event;
use cb_kv::ChunkId;
use cb_model::KvCache;
use cb_tokenizer::TokenId;
use std::time::Duration;

/// Why a payload failed to decode into a [`Message`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before the field being read.
    Truncated,
    /// An unknown message or event tag.
    BadTag(u8),
    /// A length field exceeds the bytes remaining in the payload.
    BadLength(u64),
    /// A string field is not valid UTF-8.
    BadUtf8,
    /// An enum field carries an unassigned discriminant.
    BadEnum(u64),
    /// Bytes were left over after the message decoded (framing bug or
    /// corruption that happened to parse).
    TrailingBytes(usize),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message payload truncated"),
            WireError::BadTag(t) => write!(f, "unknown message tag {t}"),
            WireError::BadLength(n) => write!(f, "length field {n} exceeds payload"),
            WireError::BadUtf8 => write!(f, "string field is not valid utf-8"),
            WireError::BadEnum(v) => write!(f, "unassigned enum discriminant {v}"),
            WireError::TrailingBytes(n) => write!(f, "{n} bytes left over after message"),
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------------
// Encoder / decoder primitives
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn u32s(&mut self, v: &[u32]) {
        self.u32(v.len() as u32);
        for &x in v {
            self.u32(x);
        }
    }
    fn u64s(&mut self, v: &[u64]) {
        self.u32(v.len() as u32);
        for &x in v {
            self.u64(x);
        }
    }
    fn f32s(&mut self, v: &[f32]) {
        self.u32(v.len() as u32);
        for &x in v {
            self.f32(x);
        }
    }
    fn blob(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.bytes(1)?[0])
    }
    fn bool(&mut self) -> Result<bool, WireError> {
        Ok(self.u8()? != 0)
    }
    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.bytes(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }
    fn f32(&mut self) -> Result<f32, WireError> {
        Ok(f32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    /// Reads a vector length and validates it against the bytes remaining
    /// (`elem_size` bytes per element) *before* the caller allocates.
    fn len(&mut self, elem_size: usize) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(elem_size) > self.remaining() {
            return Err(WireError::BadLength(n as u64));
        }
        Ok(n)
    }

    fn str(&mut self) -> Result<String, WireError> {
        let n = self.len(1)?;
        let bytes = self.bytes(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    fn blob(&mut self) -> Result<Vec<u8>, WireError> {
        let n = self.len(1)?;
        Ok(self.bytes(n)?.to_vec())
    }

    fn u32s(&mut self) -> Result<Vec<u32>, WireError> {
        let n = self.len(4)?;
        (0..n).map(|_| self.u32()).collect()
    }

    fn u64s(&mut self) -> Result<Vec<u64>, WireError> {
        let n = self.len(8)?;
        (0..n).map(|_| self.u64()).collect()
    }

    fn f32s(&mut self) -> Result<Vec<f32>, WireError> {
        let n = self.len(4)?;
        (0..n).map(|_| self.f32()).collect()
    }

    fn finish(self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::TrailingBytes(self.remaining()));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Wire mirrors of cb-core request/response types
// ---------------------------------------------------------------------------

/// A [`Request`] flattened for the wire (lossless).
#[derive(Clone, Debug, PartialEq)]
pub struct WireRequest {
    /// [`Request::chunk_ids`] as raw ids.
    pub chunk_ids: Vec<u64>,
    /// [`Request::query`].
    pub query: Vec<TokenId>,
    /// [`Request::max_new_tokens`].
    pub max_new_tokens: u32,
    /// [`Request::ratio`].
    pub ratio: Option<f32>,
    /// [`Request::priority`] (true = high lane).
    pub high_priority: bool,
    /// [`Request::deadline`] in nanoseconds.
    pub deadline_nanos: Option<u64>,
}

impl WireRequest {
    /// Flattens a request.
    pub fn from_request(r: &Request) -> Self {
        Self {
            chunk_ids: r.chunk_ids.iter().map(|c| c.0).collect(),
            query: r.query.clone(),
            max_new_tokens: r.max_new_tokens as u32,
            ratio: r.ratio,
            high_priority: r.priority == Priority::High,
            deadline_nanos: r.deadline.map(|d| d.as_nanos() as u64),
        }
    }

    /// Rebuilds the request.
    pub fn into_request(self) -> Request {
        Request {
            chunk_ids: self.chunk_ids.into_iter().map(ChunkId).collect(),
            query: self.query,
            max_new_tokens: self.max_new_tokens as usize,
            ratio: self.ratio,
            priority: if self.high_priority {
                Priority::High
            } else {
                Priority::Normal
            },
            deadline: self.deadline_nanos.map(Duration::from_nanos),
            // The trace context does not ride in the request body — it
            // crosses the wire in the `Submit` frame and is re-attached
            // by the receiving worker.
            trace: 0,
            trace_parent: 0,
        }
    }

    fn encode(&self, e: &mut Enc) {
        e.u64s(&self.chunk_ids);
        e.u32s(&self.query);
        e.u32(self.max_new_tokens);
        match self.ratio {
            Some(r) => {
                e.bool(true);
                e.f32(r);
            }
            None => e.bool(false),
        }
        e.bool(self.high_priority);
        match self.deadline_nanos {
            Some(d) => {
                e.bool(true);
                e.u64(d);
            }
            None => e.bool(false),
        }
    }

    fn decode(d: &mut Dec) -> Result<Self, WireError> {
        Ok(Self {
            chunk_ids: d.u64s()?,
            query: d.u32s()?,
            max_new_tokens: d.u32()?,
            ratio: if d.bool()? { Some(d.f32()?) } else { None },
            high_priority: d.bool()?,
            deadline_nanos: if d.bool()? { Some(d.u64()?) } else { None },
        })
    }
}

/// A [`TtftBreakdown`] flattened to nanosecond counts (lossless).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WireTtft {
    /// [`TtftBreakdown::precompute`] in nanoseconds.
    pub precompute_nanos: u64,
    /// [`TtftBreakdown::load_wait`] in nanoseconds.
    pub load_wait_nanos: u64,
    /// [`TtftBreakdown::recompute`] in nanoseconds.
    pub recompute_nanos: u64,
    /// [`TtftBreakdown::decode`] in nanoseconds.
    pub decode_nanos: u64,
    /// [`TtftBreakdown::total`] in nanoseconds.
    pub total_nanos: u64,
    /// [`TtftBreakdown::modeled_ttft_s`].
    pub modeled_ttft_s: Option<f64>,
}

impl WireTtft {
    /// Flattens a breakdown.
    pub fn from_ttft(t: &TtftBreakdown) -> Self {
        Self {
            precompute_nanos: t.precompute.as_nanos() as u64,
            load_wait_nanos: t.load_wait.as_nanos() as u64,
            recompute_nanos: t.recompute.as_nanos() as u64,
            decode_nanos: t.decode.as_nanos() as u64,
            total_nanos: t.total.as_nanos() as u64,
            modeled_ttft_s: t.modeled_ttft_s,
        }
    }

    /// Rebuilds the breakdown.
    pub fn into_ttft(self) -> TtftBreakdown {
        TtftBreakdown {
            precompute: Duration::from_nanos(self.precompute_nanos),
            load_wait: Duration::from_nanos(self.load_wait_nanos),
            recompute: Duration::from_nanos(self.recompute_nanos),
            decode: Duration::from_nanos(self.decode_nanos),
            total: Duration::from_nanos(self.total_nanos),
            modeled_ttft_s: self.modeled_ttft_s,
        }
    }

    fn encode(&self, e: &mut Enc) {
        e.u64(self.precompute_nanos);
        e.u64(self.load_wait_nanos);
        e.u64(self.recompute_nanos);
        e.u64(self.decode_nanos);
        e.u64(self.total_nanos);
        match self.modeled_ttft_s {
            Some(m) => {
                e.bool(true);
                e.f64(m);
            }
            None => e.bool(false),
        }
    }

    fn decode(d: &mut Dec) -> Result<Self, WireError> {
        Ok(Self {
            precompute_nanos: d.u64()?,
            load_wait_nanos: d.u64()?,
            recompute_nanos: d.u64()?,
            decode_nanos: d.u64()?,
            total_nanos: d.u64()?,
            modeled_ttft_s: if d.bool()? { Some(d.f64()?) } else { None },
        })
    }
}

/// A [`Response`] flattened for the wire. Carries everything remote
/// callers consume — answer, timing, ratio, provenance, blend stats —
/// but **not** the fused KV cache, final residual, or attention trace
/// (worker-local by design; see module docs). Reconstruction stubs those
/// empty.
#[derive(Clone, Debug, PartialEq)]
pub struct WireResponse {
    /// [`Response::answer`].
    pub answer: Vec<TokenId>,
    /// [`Response::ttft`].
    pub ttft: WireTtft,
    /// [`Response::recompute_ratio`].
    pub recompute_ratio: f32,
    /// [`Response::chunk_sources`]: `None` = precomputed, `Some(tier)` =
    /// store hit at that tier.
    pub chunk_sources: Vec<Option<u32>>,
    /// [`BlendStats::ctx_len`].
    pub ctx_len: u32,
    /// [`BlendStats::suffix_len`].
    pub suffix_len: u32,
    /// [`BlendStats::selected_per_layer`].
    pub selected_per_layer: Vec<u32>,
    /// [`BlendStats::first_layer_deviations`].
    pub first_layer_deviations: Vec<f32>,
}

impl WireResponse {
    /// Flattens a response.
    pub fn from_response(r: &Response) -> Self {
        Self {
            answer: r.answer.clone(),
            ttft: WireTtft::from_ttft(&r.ttft),
            recompute_ratio: r.recompute_ratio,
            chunk_sources: r
                .chunk_sources
                .iter()
                .map(|s| match s {
                    ChunkSource::Hit { tier } => Some(*tier as u32),
                    ChunkSource::Precomputed => None,
                })
                .collect(),
            ctx_len: r.blend.stats.ctx_len as u32,
            suffix_len: r.blend.stats.suffix_len as u32,
            selected_per_layer: r
                .blend
                .stats
                .selected_per_layer
                .iter()
                .map(|&n| n as u32)
                .collect(),
            first_layer_deviations: r.blend.stats.first_layer_deviations.clone(),
        }
    }

    /// Rebuilds a response with the worker-local fields stubbed empty.
    pub fn into_response(self) -> Response {
        Response {
            answer: self.answer,
            blend: BlendResult {
                cache: KvCache::empty(0, 0),
                last_residual: Vec::new(),
                stats: BlendStats {
                    ctx_len: self.ctx_len as usize,
                    suffix_len: self.suffix_len as usize,
                    selected_per_layer: self
                        .selected_per_layer
                        .iter()
                        .map(|&n| n as usize)
                        .collect(),
                    first_layer_deviations: self.first_layer_deviations,
                },
                trace: None,
            },
            ttft: self.ttft.into_ttft(),
            recompute_ratio: self.recompute_ratio,
            chunk_sources: self
                .chunk_sources
                .into_iter()
                .map(|s| match s {
                    Some(tier) => ChunkSource::Hit {
                        tier: tier as usize,
                    },
                    None => ChunkSource::Precomputed,
                })
                .collect(),
        }
    }

    fn encode(&self, e: &mut Enc) {
        e.u32s(&self.answer);
        self.ttft.encode(e);
        e.f32(self.recompute_ratio);
        e.u32(self.chunk_sources.len() as u32);
        for s in &self.chunk_sources {
            match s {
                Some(tier) => {
                    e.bool(true);
                    e.u32(*tier);
                }
                None => e.bool(false),
            }
        }
        e.u32(self.ctx_len);
        e.u32(self.suffix_len);
        e.u32s(&self.selected_per_layer);
        e.f32s(&self.first_layer_deviations);
    }

    fn decode(d: &mut Dec) -> Result<Self, WireError> {
        let answer = d.u32s()?;
        let ttft = WireTtft::decode(d)?;
        let recompute_ratio = d.f32()?;
        let n_sources = d.len(1)?;
        let chunk_sources = (0..n_sources)
            .map(|_| Ok(if d.bool()? { Some(d.u32()?) } else { None }))
            .collect::<Result<Vec<_>, WireError>>()?;
        Ok(Self {
            answer,
            ttft,
            recompute_ratio,
            chunk_sources,
            ctx_len: d.u32()?,
            suffix_len: d.u32()?,
            selected_per_layer: d.u32s()?,
            first_layer_deviations: d.f32s()?,
        })
    }
}

/// An [`EngineError`] flattened to `(code, detail, message)` — the
/// structured failure satellite: detail survives the service boundary
/// instead of collapsing to an opaque cancel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireFailure {
    /// [`ErrorCode`] as its `u16` discriminant.
    pub code: u16,
    /// Variant-specific numeric detail (chunk id, byte size).
    pub detail: u64,
    /// Human-readable detail rendered on the failing side.
    pub message: String,
}

impl WireFailure {
    /// Flattens an error via [`EngineError::to_wire`].
    pub fn from_error(e: &EngineError) -> Self {
        let (code, detail, message) = e.to_wire();
        Self {
            code: code as u16,
            detail,
            message,
        }
    }

    /// Rebuilds the error via [`EngineError::from_wire`].
    pub fn into_error(self) -> EngineError {
        match ErrorCode::from_u16(self.code) {
            Some(code) => EngineError::from_wire(code, self.detail, self.message),
            // An unassigned code (newer peer): preserve what we can.
            None => EngineError::Remote {
                code: ErrorCode::Canceled,
                message: format!("unknown remote error code {}: {}", self.code, self.message),
            },
        }
    }

    fn encode(&self, e: &mut Enc) {
        e.u16(self.code);
        e.u64(self.detail);
        e.str(&self.message);
    }

    fn decode(d: &mut Dec) -> Result<Self, WireError> {
        Ok(Self {
            code: d.u16()?,
            detail: d.u64()?,
            message: d.str()?,
        })
    }
}

/// A [`cb_core::stream::Event`] flattened for the wire, one variant per
/// lifecycle step.
#[derive(Clone, Debug, PartialEq)]
pub enum WireEvent {
    /// [`Event::Queued`].
    Queued,
    /// [`Event::Admitted`].
    Admitted,
    /// [`Event::FirstToken`].
    FirstToken(WireTtft),
    /// [`Event::Token`].
    Token(TokenId),
    /// [`Event::Done`].
    Done(WireResponse),
    /// [`Event::Failed`].
    Failed(WireFailure),
}

impl WireEvent {
    /// Flattens a stream event.
    pub fn from_event(ev: &Event) -> Self {
        match ev {
            Event::Queued => WireEvent::Queued,
            Event::Admitted => WireEvent::Admitted,
            Event::FirstToken(t) => WireEvent::FirstToken(WireTtft::from_ttft(t)),
            Event::Token(t) => WireEvent::Token(*t),
            Event::Done(r) => WireEvent::Done(WireResponse::from_response(r)),
            Event::Failed(e) => WireEvent::Failed(WireFailure::from_error(e)),
        }
    }

    /// Rebuilds the native event (see [`WireResponse::into_response`] for
    /// what a `Done` payload stubs).
    pub fn into_event(self) -> Event {
        match self {
            WireEvent::Queued => Event::Queued,
            WireEvent::Admitted => Event::Admitted,
            WireEvent::FirstToken(t) => Event::FirstToken(t.into_ttft()),
            WireEvent::Token(t) => Event::Token(t),
            WireEvent::Done(r) => Event::Done(r.into_response()),
            WireEvent::Failed(f) => Event::Failed(f.into_error()),
        }
    }

    /// True for `Done`/`Failed` (mirrors [`Event::is_terminal`]).
    pub fn is_terminal(&self) -> bool {
        matches!(self, WireEvent::Done(_) | WireEvent::Failed(_))
    }

    fn encode(&self, e: &mut Enc) {
        match self {
            WireEvent::Queued => e.u8(0),
            WireEvent::Admitted => e.u8(1),
            WireEvent::FirstToken(t) => {
                e.u8(2);
                t.encode(e);
            }
            WireEvent::Token(t) => {
                e.u8(3);
                e.u32(*t);
            }
            WireEvent::Done(r) => {
                e.u8(4);
                r.encode(e);
            }
            WireEvent::Failed(f) => {
                e.u8(5);
                f.encode(e);
            }
        }
    }

    fn decode(d: &mut Dec) -> Result<Self, WireError> {
        Ok(match d.u8()? {
            0 => WireEvent::Queued,
            1 => WireEvent::Admitted,
            2 => WireEvent::FirstToken(WireTtft::decode(d)?),
            3 => WireEvent::Token(d.u32()?),
            4 => WireEvent::Done(WireResponse::decode(d)?),
            5 => WireEvent::Failed(WireFailure::decode(d)?),
            t => return Err(WireError::BadTag(t)),
        })
    }
}

fn encode_probe(e: &mut Enc, p: &ServiceProbe) {
    e.u32(p.queue_depth as u32);
    e.u32(p.queue_capacity as u32);
    e.u32(p.inflight as u32);
    e.u32(p.workers as u32);
    e.bool(p.shutdown);
}

fn decode_probe(d: &mut Dec) -> Result<ServiceProbe, WireError> {
    Ok(ServiceProbe {
        queue_depth: d.u32()? as usize,
        queue_capacity: d.u32()? as usize,
        inflight: d.u32()? as usize,
        workers: d.u32()? as usize,
        shutdown: d.bool()?,
    })
}

fn encode_stats(e: &mut Enc, s: &ServiceStats) {
    e.u64(s.submitted);
    e.u64(s.rejected);
    e.u64(s.completed);
    e.u64(s.failed);
    e.u64(s.deadline_misses);
    e.u64(s.canceled);
    e.u64(s.peak_queue_depth);
}

fn decode_stats(d: &mut Dec) -> Result<ServiceStats, WireError> {
    Ok(ServiceStats {
        submitted: d.u64()?,
        rejected: d.u64()?,
        completed: d.u64()?,
        failed: d.u64()?,
        deadline_misses: d.u64()?,
        canceled: d.u64()?,
        peak_queue_depth: d.u64()?,
    })
}

// ---------------------------------------------------------------------------
// The message catalogue
// ---------------------------------------------------------------------------

/// Every message the control plane speaks, in both directions.
///
/// Direction conventions: workers send `HelloWorker`, `Heartbeat`,
/// `Rejected`, `Ev`, and RPC replies; the gateway sends `Submit`,
/// `RegisterChunk`, `Status`, `Drain`, and `Shutdown`. Clients speak the
/// same submit/register/status verbs to the gateway, which relays `Ev`
/// frames back. A warm-standby gateway opens with `HelloStandby` and
/// then only ever receives: the primary mirrors its journal, chunk
/// registry, and roster to it via the `Replicate*` family.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq)]
pub enum Message {
    /// First frame on a worker connection: announces the engine service
    /// behind it with a stable identity, an initial probe, and counters.
    HelloWorker {
        /// Stable worker identity: survives process restarts, so a
        /// reconnecting worker adopts its old slot (chunk homes, health
        /// history, and stats carry over) instead of growing the roster.
        id: u64,
        /// Monotonic per-identity connection generation. A re-attach
        /// must carry a strictly higher incarnation than the slot's
        /// current one; frames from a superseded incarnation are
        /// rejected.
        incarnation: u64,
        /// The service's admission probe at connect time.
        probe: ServiceProbe,
        /// The service's lifetime counters at connect time.
        stats: ServiceStats,
    },
    /// First frame on a client connection.
    HelloClient,
    /// First frame on a warm-standby gateway connection: asks the primary
    /// to mirror its pending journal, chunk registry, and worker roster
    /// via the `Replicate*` family.
    HelloStandby,
    /// Periodic worker → gateway health report.
    Heartbeat {
        /// Fresh admission probe.
        probe: ServiceProbe,
        /// Fresh lifetime counters.
        stats: ServiceStats,
    },
    /// Gateway → worker (or client → gateway) request submission.
    Submit {
        /// Request id, unique per connection.
        id: u64,
        /// Observability trace id for this request's timeline (0 = none).
        /// The gateway assigns one at placement; the worker binds it to
        /// the serving thread so engine spans land on the same trace.
        trace: u64,
        /// Span id the receiver should parent its spans under (the
        /// gateway's `serve` span for this placement attempt; 0 = root).
        span: u64,
        /// If true the worker must block for queue space rather than
        /// reject (the gateway's last-resort placement).
        blocking: bool,
        /// The request itself.
        request: WireRequest,
    },
    /// Worker → gateway: the submission was rejected (queue full). The
    /// probe rides along so the gateway respills with fresh load data.
    Rejected {
        /// Id of the rejected submission.
        id: u64,
        /// The worker's probe at rejection time.
        probe: ServiceProbe,
    },
    /// One stream event of request `id`, worker → gateway → client.
    Ev {
        /// The request the event belongs to.
        id: u64,
        /// The trace id the event belongs to (mirrors the `Submit` that
        /// started it; 0 = untraced), so relays can label span timelines
        /// without a lookup.
        trace: u64,
        /// The event.
        event: WireEvent,
    },
    /// Registers a chunk on the receiving worker.
    RegisterChunk {
        /// RPC correlation id.
        rpc: u64,
        /// Eager: precompute the KV and replicate it to the persistent
        /// tier (done at the chunk's home). Lazy otherwise.
        eager: bool,
        /// The chunk's tokens.
        tokens: Vec<TokenId>,
    },
    /// Reply to [`Message::RegisterChunk`].
    RegisterReply {
        /// RPC correlation id.
        rpc: u64,
        /// The chunk id, or the registration failure.
        result: Result<u64, WireFailure>,
    },
    /// Probe request (gateway → worker, or client → gateway).
    Status {
        /// RPC correlation id.
        rpc: u64,
    },
    /// Worker → gateway reply to [`Message::Status`].
    StatusReply {
        /// RPC correlation id.
        rpc: u64,
        /// Fresh admission probe.
        probe: ServiceProbe,
        /// Fresh lifetime counters.
        stats: ServiceStats,
    },
    /// Gateway → client reply to [`Message::Status`]: per-worker health
    /// and probes.
    ClusterStatusReply {
        /// RPC correlation id.
        rpc: u64,
        /// Routing eligibility per worker.
        healthy: Vec<bool>,
        /// Last-heartbeat probe per worker.
        probes: Vec<ServiceProbe>,
    },
    /// Metrics scrape (client → gateway, or gateway → worker). The
    /// gateway answers with its *cluster-aggregated* registry: it
    /// fans this same message out to every live worker, merges the
    /// replies with its own registry (instance-deduplicated, so the
    /// in-process loopback cluster is not double-counted), and folds in
    /// the cluster counters.
    Metrics {
        /// RPC correlation id.
        rpc: u64,
    },
    /// Reply to [`Message::Metrics`]: one encoded
    /// [`MetricsSnapshot`](cb_obs::metrics::MetricsSnapshot).
    MetricsReply {
        /// RPC correlation id.
        rpc: u64,
        /// `MetricsSnapshot::encode()` payload (self-validating; decoded
        /// with `MetricsSnapshot::decode`).
        snapshot: Vec<u8>,
    },
    /// Asks the receiver to finish all queued work before replying.
    Drain {
        /// RPC correlation id.
        rpc: u64,
    },
    /// Reply to [`Message::Drain`] once the queue and in-flight set are
    /// empty.
    DrainReply {
        /// RPC correlation id.
        rpc: u64,
    },
    /// Terminal frame: the peer is going away; tear the connection down.
    Shutdown,
    /// Primary → standby: a journal entry was created or re-placed. The
    /// standby stores the full request body so a takeover can resume the
    /// session when the client re-submits by id.
    ReplicatePending {
        /// The journaled request id.
        id: u64,
        /// The request body.
        request: WireRequest,
        /// Answer tokens already relayed to the client for this id.
        delivered_tokens: u32,
    },
    /// Primary → standby: more of a journaled request's answer reached
    /// the client (sent per relayed token so the mirror's delivered
    /// count never trails by more than one in-flight frame).
    ReplicateProgress {
        /// The journaled request id.
        id: u64,
        /// Total answer tokens relayed to the client so far.
        delivered_tokens: u32,
    },
    /// Primary → standby: a journal entry resolved (terminal event
    /// relayed); the mirror drops it.
    ReplicateRetire {
        /// The retired request id.
        id: u64,
    },
    /// Primary → standby: a chunk registered cluster-wide. The tokens
    /// (not just the content-addressed id) cross so the standby can
    /// re-register them against workers that attach after a takeover.
    ReplicateChunk {
        /// The chunk's tokens.
        tokens: Vec<TokenId>,
    },
    /// Primary → standby: the worker roster, in slot order (identity and
    /// current incarnation per slot). Doubles as the primary's liveness
    /// signal — it is re-sent every mirror tick, and standby takeover
    /// triggers on the same heartbeat-silence rule workers are held to.
    ReplicateRoster {
        /// Worker identity per slot, in slot order.
        ids: Vec<u64>,
        /// Current incarnation per slot, in slot order.
        incarnations: Vec<u64>,
    },
}

const TAG_HELLO_WORKER: u8 = 1;
const TAG_HELLO_CLIENT: u8 = 2;
const TAG_HEARTBEAT: u8 = 3;
const TAG_SUBMIT: u8 = 4;
const TAG_REJECTED: u8 = 5;
const TAG_EV: u8 = 6;
const TAG_REGISTER_CHUNK: u8 = 7;
const TAG_REGISTER_REPLY: u8 = 8;
const TAG_STATUS: u8 = 9;
const TAG_STATUS_REPLY: u8 = 10;
const TAG_CLUSTER_STATUS_REPLY: u8 = 11;
const TAG_DRAIN: u8 = 12;
const TAG_DRAIN_REPLY: u8 = 13;
const TAG_SHUTDOWN: u8 = 14;
const TAG_HELLO_STANDBY: u8 = 15;
const TAG_REPLICATE_PENDING: u8 = 16;
const TAG_REPLICATE_PROGRESS: u8 = 17;
const TAG_REPLICATE_RETIRE: u8 = 18;
const TAG_REPLICATE_CHUNK: u8 = 19;
const TAG_REPLICATE_ROSTER: u8 = 20;
const TAG_METRICS: u8 = 21;
const TAG_METRICS_REPLY: u8 = 22;

impl Message {
    /// Encodes the message into a frame payload (pair with
    /// [`crate::frame::encode_frame`]).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::default();
        match self {
            Message::HelloWorker {
                id,
                incarnation,
                probe,
                stats,
            } => {
                e.u8(TAG_HELLO_WORKER);
                e.u64(*id);
                e.u64(*incarnation);
                encode_probe(&mut e, probe);
                encode_stats(&mut e, stats);
            }
            Message::HelloClient => e.u8(TAG_HELLO_CLIENT),
            Message::HelloStandby => e.u8(TAG_HELLO_STANDBY),
            Message::Heartbeat { probe, stats } => {
                e.u8(TAG_HEARTBEAT);
                encode_probe(&mut e, probe);
                encode_stats(&mut e, stats);
            }
            Message::Submit {
                id,
                trace,
                span,
                blocking,
                request,
            } => {
                e.u8(TAG_SUBMIT);
                e.u64(*id);
                e.u64(*trace);
                e.u64(*span);
                e.bool(*blocking);
                request.encode(&mut e);
            }
            Message::Rejected { id, probe } => {
                e.u8(TAG_REJECTED);
                e.u64(*id);
                encode_probe(&mut e, probe);
            }
            Message::Ev { id, trace, event } => {
                e.u8(TAG_EV);
                e.u64(*id);
                e.u64(*trace);
                event.encode(&mut e);
            }
            Message::RegisterChunk { rpc, eager, tokens } => {
                e.u8(TAG_REGISTER_CHUNK);
                e.u64(*rpc);
                e.bool(*eager);
                e.u32s(tokens);
            }
            Message::RegisterReply { rpc, result } => {
                e.u8(TAG_REGISTER_REPLY);
                e.u64(*rpc);
                match result {
                    Ok(id) => {
                        e.bool(true);
                        e.u64(*id);
                    }
                    Err(fail) => {
                        e.bool(false);
                        fail.encode(&mut e);
                    }
                }
            }
            Message::Status { rpc } => {
                e.u8(TAG_STATUS);
                e.u64(*rpc);
            }
            Message::StatusReply { rpc, probe, stats } => {
                e.u8(TAG_STATUS_REPLY);
                e.u64(*rpc);
                encode_probe(&mut e, probe);
                encode_stats(&mut e, stats);
            }
            Message::ClusterStatusReply {
                rpc,
                healthy,
                probes,
            } => {
                e.u8(TAG_CLUSTER_STATUS_REPLY);
                e.u64(*rpc);
                e.u32(healthy.len() as u32);
                for &h in healthy {
                    e.bool(h);
                }
                e.u32(probes.len() as u32);
                for p in probes {
                    encode_probe(&mut e, p);
                }
            }
            Message::Metrics { rpc } => {
                e.u8(TAG_METRICS);
                e.u64(*rpc);
            }
            Message::MetricsReply { rpc, snapshot } => {
                e.u8(TAG_METRICS_REPLY);
                e.u64(*rpc);
                e.blob(snapshot);
            }
            Message::Drain { rpc } => {
                e.u8(TAG_DRAIN);
                e.u64(*rpc);
            }
            Message::DrainReply { rpc } => {
                e.u8(TAG_DRAIN_REPLY);
                e.u64(*rpc);
            }
            Message::Shutdown => e.u8(TAG_SHUTDOWN),
            Message::ReplicatePending {
                id,
                request,
                delivered_tokens,
            } => {
                e.u8(TAG_REPLICATE_PENDING);
                e.u64(*id);
                request.encode(&mut e);
                e.u32(*delivered_tokens);
            }
            Message::ReplicateProgress {
                id,
                delivered_tokens,
            } => {
                e.u8(TAG_REPLICATE_PROGRESS);
                e.u64(*id);
                e.u32(*delivered_tokens);
            }
            Message::ReplicateRetire { id } => {
                e.u8(TAG_REPLICATE_RETIRE);
                e.u64(*id);
            }
            Message::ReplicateChunk { tokens } => {
                e.u8(TAG_REPLICATE_CHUNK);
                e.u32s(tokens);
            }
            Message::ReplicateRoster { ids, incarnations } => {
                e.u8(TAG_REPLICATE_ROSTER);
                e.u64s(ids);
                e.u64s(incarnations);
            }
        }
        e.buf
    }

    /// Decodes a frame payload. Rejects unknown tags, truncated or
    /// oversized fields, and trailing bytes — without panicking or
    /// allocating beyond the payload's own length.
    pub fn decode(payload: &[u8]) -> Result<Message, WireError> {
        let mut d = Dec::new(payload);
        let msg = match d.u8()? {
            TAG_HELLO_WORKER => Message::HelloWorker {
                id: d.u64()?,
                incarnation: d.u64()?,
                probe: decode_probe(&mut d)?,
                stats: decode_stats(&mut d)?,
            },
            TAG_HELLO_CLIENT => Message::HelloClient,
            TAG_HELLO_STANDBY => Message::HelloStandby,
            TAG_HEARTBEAT => Message::Heartbeat {
                probe: decode_probe(&mut d)?,
                stats: decode_stats(&mut d)?,
            },
            TAG_SUBMIT => Message::Submit {
                id: d.u64()?,
                trace: d.u64()?,
                span: d.u64()?,
                blocking: d.bool()?,
                request: WireRequest::decode(&mut d)?,
            },
            TAG_REJECTED => Message::Rejected {
                id: d.u64()?,
                probe: decode_probe(&mut d)?,
            },
            TAG_EV => Message::Ev {
                id: d.u64()?,
                trace: d.u64()?,
                event: WireEvent::decode(&mut d)?,
            },
            TAG_REGISTER_CHUNK => Message::RegisterChunk {
                rpc: d.u64()?,
                eager: d.bool()?,
                tokens: d.u32s()?,
            },
            TAG_REGISTER_REPLY => Message::RegisterReply {
                rpc: d.u64()?,
                result: if d.bool()? {
                    Ok(d.u64()?)
                } else {
                    Err(WireFailure::decode(&mut d)?)
                },
            },
            TAG_STATUS => Message::Status { rpc: d.u64()? },
            TAG_STATUS_REPLY => Message::StatusReply {
                rpc: d.u64()?,
                probe: decode_probe(&mut d)?,
                stats: decode_stats(&mut d)?,
            },
            TAG_CLUSTER_STATUS_REPLY => {
                let rpc = d.u64()?;
                let n_healthy = d.len(1)?;
                let healthy = (0..n_healthy)
                    .map(|_| d.bool())
                    .collect::<Result<Vec<_>, _>>()?;
                let n_probes = d.len(17)?;
                let probes = (0..n_probes)
                    .map(|_| decode_probe(&mut d))
                    .collect::<Result<Vec<_>, _>>()?;
                Message::ClusterStatusReply {
                    rpc,
                    healthy,
                    probes,
                }
            }
            TAG_METRICS => Message::Metrics { rpc: d.u64()? },
            TAG_METRICS_REPLY => Message::MetricsReply {
                rpc: d.u64()?,
                snapshot: d.blob()?,
            },
            TAG_DRAIN => Message::Drain { rpc: d.u64()? },
            TAG_DRAIN_REPLY => Message::DrainReply { rpc: d.u64()? },
            TAG_SHUTDOWN => Message::Shutdown,
            TAG_REPLICATE_PENDING => Message::ReplicatePending {
                id: d.u64()?,
                request: WireRequest::decode(&mut d)?,
                delivered_tokens: d.u32()?,
            },
            TAG_REPLICATE_PROGRESS => Message::ReplicateProgress {
                id: d.u64()?,
                delivered_tokens: d.u32()?,
            },
            TAG_REPLICATE_RETIRE => Message::ReplicateRetire { id: d.u64()? },
            TAG_REPLICATE_CHUNK => Message::ReplicateChunk { tokens: d.u32s()? },
            TAG_REPLICATE_ROSTER => Message::ReplicateRoster {
                ids: d.u64s()?,
                incarnations: d.u64s()?,
            },
            t => return Err(WireError::BadTag(t)),
        };
        d.finish()?;
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_probe() -> ServiceProbe {
        ServiceProbe {
            queue_depth: 3,
            queue_capacity: 64,
            inflight: 2,
            workers: 4,
            shutdown: false,
        }
    }

    fn sample_stats() -> ServiceStats {
        ServiceStats {
            submitted: 10,
            rejected: 1,
            completed: 8,
            failed: 1,
            deadline_misses: 2,
            canceled: 0,
            peak_queue_depth: 5,
        }
    }

    fn sample_messages() -> Vec<Message> {
        vec![
            Message::HelloWorker {
                id: 0xB0B5_1ED5,
                incarnation: 3,
                probe: sample_probe(),
                stats: sample_stats(),
            },
            Message::HelloClient,
            Message::HelloStandby,
            Message::Heartbeat {
                probe: sample_probe(),
                stats: sample_stats(),
            },
            Message::Submit {
                id: 42,
                trace: 0xFEED_F00D,
                span: 21,
                blocking: true,
                request: WireRequest {
                    chunk_ids: vec![0xDEAD_BEEF, 7],
                    query: vec![1, 2, 3],
                    max_new_tokens: 8,
                    ratio: Some(0.45),
                    high_priority: true,
                    deadline_nanos: Some(5_000_000),
                },
            },
            Message::Rejected {
                id: 42,
                probe: sample_probe(),
            },
            Message::Ev {
                id: 9,
                trace: 0xFEED_F00D,
                event: WireEvent::Queued,
            },
            Message::Ev {
                id: 9,
                trace: 0xFEED_F00D,
                event: WireEvent::FirstToken(WireTtft::default()),
            },
            Message::Ev {
                id: 9,
                trace: 0xFEED_F00D,
                event: WireEvent::Token(77),
            },
            Message::Ev {
                id: 9,
                trace: 0xFEED_F00D,
                event: WireEvent::Done(WireResponse {
                    answer: vec![5, 6],
                    ttft: WireTtft {
                        precompute_nanos: 1,
                        load_wait_nanos: 2,
                        recompute_nanos: 3,
                        decode_nanos: 4,
                        total_nanos: 10,
                        modeled_ttft_s: Some(0.5),
                    },
                    recompute_ratio: 0.15,
                    chunk_sources: vec![Some(1), None],
                    ctx_len: 33,
                    suffix_len: 4,
                    selected_per_layer: vec![4, 5],
                    first_layer_deviations: vec![0.1, 0.2],
                }),
            },
            Message::Ev {
                id: 9,
                trace: 0xFEED_F00D,
                event: WireEvent::Failed(WireFailure {
                    code: ErrorCode::UnknownChunk as u16,
                    detail: 0xABCD,
                    message: String::new(),
                }),
            },
            Message::RegisterChunk {
                rpc: 1,
                eager: true,
                tokens: vec![10, 11, 12],
            },
            Message::RegisterReply {
                rpc: 1,
                result: Ok(0x1234),
            },
            Message::RegisterReply {
                rpc: 2,
                result: Err(WireFailure {
                    code: ErrorCode::EmptyChunk as u16,
                    detail: 0,
                    message: "empty".into(),
                }),
            },
            Message::Status { rpc: 3 },
            Message::StatusReply {
                rpc: 3,
                probe: sample_probe(),
                stats: sample_stats(),
            },
            Message::ClusterStatusReply {
                rpc: 4,
                healthy: vec![true, false],
                probes: vec![sample_probe(), sample_probe()],
            },
            Message::Metrics { rpc: 6 },
            Message::MetricsReply {
                rpc: 6,
                snapshot: {
                    // A real encoded registry snapshot, so the roundtrip
                    // covers the nested codec end to end.
                    let reg = cb_obs::metrics::Registry::new();
                    reg.counter("cb_requests_completed_total").add(3);
                    reg.histogram("cb_ttft_seconds").record(1_000_000);
                    reg.snapshot().encode()
                },
            },
            Message::Drain { rpc: 5 },
            Message::DrainReply { rpc: 5 },
            Message::Shutdown,
            Message::ReplicatePending {
                id: 42,
                request: WireRequest {
                    chunk_ids: vec![3, 4],
                    query: vec![9],
                    max_new_tokens: 2,
                    ratio: None,
                    high_priority: false,
                    deadline_nanos: None,
                },
                delivered_tokens: 5,
            },
            Message::ReplicateProgress {
                id: 42,
                delivered_tokens: 6,
            },
            Message::ReplicateRetire { id: 42 },
            Message::ReplicateChunk {
                tokens: vec![1, 2, 3],
            },
            Message::ReplicateRoster {
                ids: vec![11, 22],
                incarnations: vec![1, 4],
            },
        ]
    }

    #[test]
    fn every_message_roundtrips() {
        for msg in sample_messages() {
            let bytes = msg.encode();
            assert_eq!(
                Message::decode(&bytes).unwrap(),
                msg,
                "roundtrip of {msg:?}"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = Message::Shutdown.encode();
        bytes.push(0);
        assert_eq!(Message::decode(&bytes), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn unknown_tag_is_rejected() {
        assert_eq!(Message::decode(&[0xEE]), Err(WireError::BadTag(0xEE)));
        assert_eq!(Message::decode(&[]), Err(WireError::Truncated));
    }

    #[test]
    fn length_fields_are_validated_before_allocation() {
        // A RegisterChunk claiming u32::MAX tokens in a 20-byte payload
        // must fail on the length check, not attempt a 16 GiB Vec.
        let mut e = Enc::default();
        e.u8(TAG_REGISTER_CHUNK);
        e.u64(1);
        e.bool(false);
        e.u32(u32::MAX);
        assert_eq!(
            Message::decode(&e.buf),
            Err(WireError::BadLength(u32::MAX as u64))
        );
    }

    #[test]
    fn request_and_error_conversions_roundtrip() {
        let req = Request::new(vec![ChunkId(5), ChunkId(9)], vec![1, 2])
            .ratio(0.3)
            .max_new_tokens(4);
        let wire = WireRequest::from_request(&req);
        let back = wire.into_request();
        assert_eq!(back.chunk_ids, req.chunk_ids);
        assert_eq!(back.query, req.query);
        assert_eq!(back.max_new_tokens, req.max_new_tokens);
        assert_eq!(back.ratio, req.ratio);

        for err in [
            EngineError::UnknownChunk(ChunkId(0xFEED)),
            EngineError::EmptyChunk,
            EngineError::EmptyQuery,
            EngineError::TooLarge { size: 1 << 30 },
            EngineError::Storage("disk on fire".into()),
            EngineError::Config("bad ratio".into()),
            EngineError::Canceled,
            EngineError::Panicked,
        ] {
            let wire = WireFailure::from_error(&err);
            assert_eq!(wire.into_error(), err, "lossless for {err:?}");
        }
    }
}
