//! 8-bit KV cache quantization.
//!
//! The paper serves Yi-34B and Llama-70B with 8-bit quantization and names
//! KV-compression work (KIVI, CacheGen, …) as complementary: "CacheBlend
//! can benefit from such techniques by storing and loading less KV cache"
//! (§8). This module implements the storage side: per-row symmetric int8
//! quantization of K and V, quartering the bytes a store holds and a
//! loader moves. The compiled program's decision margins are multi-nat, so
//! blending from quantized caches preserves answers — verified by tests.
//!
//! Wire format (little-endian):
//!
//! ```text
//! magic u32 | n_layers u32 | rows u32 | width u32
//! positions rows×u64 | tokens rows×u32
//! per layer: K scales rows×f32, K data rows×width×i8,
//!            V scales rows×f32, V data rows×width×i8
//! checksum u64
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};
use cb_model::{KvCache, LayerKv};
use cb_tensor::Matrix;

use crate::serialize::DecodeError;

const QMAGIC: u32 = 0x4342_5156; // "CBQV"

fn fnv(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

fn put_quantized(buf: &mut BytesMut, m: &Matrix) {
    for r in 0..m.rows() {
        let row = m.row(r);
        let max = row.iter().fold(0.0f32, |a, &v| a.max(v.abs()));
        let scale = if max > 0.0 { max / 127.0 } else { 1.0 };
        buf.put_f32_le(scale);
        for &v in row {
            buf.put_i8((v / scale).round().clamp(-127.0, 127.0) as i8);
        }
    }
}

fn get_dequantized(buf: &mut Bytes, rows: usize, width: usize) -> Matrix {
    let mut m = Matrix::zeros(rows, width);
    for r in 0..rows {
        let scale = buf.get_f32_le();
        let row = m.row_mut(r);
        for v in row.iter_mut() {
            *v = buf.get_i8() as f32 * scale;
        }
    }
    m
}

/// Serializes a cache with int8 quantization (≈4× smaller than
/// [`crate::serialize::encode`]).
pub fn encode_quantized(cache: &KvCache) -> Bytes {
    let rows = cache.len();
    let width = cache.layers.first().map(|l| l.k.cols()).unwrap_or(0);
    let mut buf =
        BytesMut::with_capacity(24 + rows * 12 + cache.n_layers() * 2 * rows * (width + 4));
    buf.put_u32_le(QMAGIC);
    buf.put_u32_le(cache.n_layers() as u32);
    buf.put_u32_le(rows as u32);
    buf.put_u32_le(width as u32);
    for &p in &cache.positions {
        buf.put_u64_le(p as u64);
    }
    for &t in &cache.tokens {
        buf.put_u32_le(t);
    }
    for layer in &cache.layers {
        put_quantized(&mut buf, &layer.k);
        put_quantized(&mut buf, &layer.v);
    }
    let sum = fnv(&buf);
    buf.put_u64_le(sum);
    buf.freeze()
}

/// Decodes a quantized entry back to an f32 cache (dequantizing).
pub fn decode_quantized(mut bytes: Bytes) -> Result<KvCache, DecodeError> {
    if bytes.len() < 24 {
        return Err(DecodeError::Truncated);
    }
    let body = bytes.len() - 8;
    let declared = u64::from_le_bytes(bytes[body..].try_into().unwrap());
    if fnv(&bytes[..body]) != declared {
        return Err(DecodeError::Corrupted);
    }
    if bytes.get_u32_le() != QMAGIC {
        return Err(DecodeError::BadMagic);
    }
    let n_layers = bytes.get_u32_le() as usize;
    let rows = bytes.get_u32_le() as usize;
    let width = bytes.get_u32_le() as usize;
    let need = rows * 12 + n_layers * 2 * rows * (width + 4) + 8;
    if bytes.remaining() < need {
        return Err(DecodeError::Truncated);
    }
    let mut positions = Vec::with_capacity(rows);
    for _ in 0..rows {
        positions.push(bytes.get_u64_le() as usize);
    }
    let mut tokens = Vec::with_capacity(rows);
    for _ in 0..rows {
        tokens.push(bytes.get_u32_le());
    }
    let mut layers = Vec::with_capacity(n_layers);
    for _ in 0..n_layers {
        let k = get_dequantized(&mut bytes, rows, width);
        let v = get_dequantized(&mut bytes, rows, width);
        layers.push(LayerKv { k, v });
    }
    Ok(KvCache {
        layers,
        positions,
        tokens,
    })
}

/// The quantization's worst-case relative error per element: `1/254` of the
/// row's max-abs (symmetric int8 rounding).
pub const MAX_RELATIVE_ERROR: f32 = 1.0 / 254.0;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precompute::precompute_chunk;
    use cb_model::{Model, ModelConfig, ModelProfile};
    use cb_tokenizer::TokenKind::*;

    fn model() -> Model {
        Model::compiled(ModelConfig::standard(ModelProfile::Tiny, 11))
    }

    fn chunk_cache(m: &Model) -> KvCache {
        let v = &m.cfg.vocab;
        let toks: Vec<u32> = [
            Entity(5),
            Attr(0),
            Value(1),
            Sep,
            Ref,
            Attr(3),
            Value(9),
            Sep,
        ]
        .map(|k| v.id(k))
        .to_vec();
        precompute_chunk(m, &toks)
    }

    #[test]
    fn quantized_roundtrip_is_close() {
        let m = model();
        let cache = chunk_cache(&m);
        let back = decode_quantized(encode_quantized(&cache)).unwrap();
        assert_eq!(back.positions, cache.positions);
        assert_eq!(back.tokens, cache.tokens);
        for l in 0..cache.n_layers() {
            let max = cache.layers[l].k.max_abs();
            let d = cache.layers[l].k.frobenius_distance(&back.layers[l].k);
            // Error per element ≤ max·(1/254); Frobenius over n elements
            // ≤ max·√n/254.
            let n = (cache.layers[l].k.rows() * cache.layers[l].k.cols()) as f32;
            assert!(
                d <= max * n.sqrt() * MAX_RELATIVE_ERROR * 1.01,
                "layer {l}: error {d} exceeds bound"
            );
        }
    }

    #[test]
    fn quantized_entries_are_about_4x_smaller() {
        let m = model();
        let cache = chunk_cache(&m);
        let full = crate::serialize::encode(&cache).len() as f64;
        let quant = encode_quantized(&cache).len() as f64;
        let ratio = full / quant;
        assert!((3.0..4.5).contains(&ratio), "compression ratio {ratio}");
    }

    #[test]
    fn corruption_is_detected() {
        let m = model();
        let mut raw = encode_quantized(&chunk_cache(&m)).to_vec();
        let n = raw.len();
        raw[n / 2] ^= 0x55;
        assert_eq!(
            decode_quantized(Bytes::from(raw)),
            Err(DecodeError::Corrupted)
        );
    }

    #[test]
    fn plain_entries_are_rejected_by_magic() {
        let m = model();
        let cache = chunk_cache(&m);
        let plain = crate::serialize::encode(&cache);
        assert!(matches!(
            decode_quantized(plain),
            Err(DecodeError::BadMagic | DecodeError::Corrupted)
        ));
    }

    #[test]
    fn zero_rows_roundtrip() {
        let cache = KvCache::empty(2, 8);
        let back = decode_quantized(encode_quantized(&cache)).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.n_layers(), 2);
    }
}
