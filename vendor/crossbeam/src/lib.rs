//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel::bounded` with the send/recv surface the
//! pipelined loader uses, implemented over `std::sync::mpsc::sync_channel`
//! (same bounded-rendezvous semantics for this workspace's usage).

/// Multi-producer bounded channels.
pub mod channel {
    use std::sync::mpsc;

    /// Error returned when the receiving side has hung up.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned when all senders have hung up.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Sending half of a bounded channel.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Blocks until there is room, then sends.
        pub fn send(&self, v: T) -> Result<(), SendError<T>> {
            self.0.send(v).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// Receiving half of a bounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }
    }

    /// Creates a bounded channel with the given capacity.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn bounded_roundtrip_across_threads() {
            let (tx, rx) = bounded::<u32>(2);
            let t = std::thread::spawn(move || {
                for i in 0..10 {
                    tx.send(i).unwrap();
                }
            });
            let got: Vec<u32> = (0..10).map(|_| rx.recv().unwrap()).collect();
            t.join().unwrap();
            assert_eq!(got, (0..10).collect::<Vec<_>>());
            assert_eq!(rx.recv(), Err(RecvError));
        }
    }
}
