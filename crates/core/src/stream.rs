//! Streaming responses: the per-request [`Event`] lifecycle and the
//! [`ResponseStream`] handle returned by
//! [`EngineService::submit_stream`](crate::scheduler::EngineService::submit_stream).
//!
//! Every request admitted to the scheduler produces one event stream:
//!
//! ```text
//! Queued → Admitted → FirstToken(ttft) → Token* → Done(response)
//!                                                  └ or Failed(error)
//! ```
//!
//! Events always arrive in that order. `FirstToken` fires the moment
//! prefill (the blend) completes — its [`TtftBreakdown`] is the TTFT
//! measurement. `Token` fires once per decoded answer token (requests
//! whose first logits already terminate the answer stream zero `Token`
//! events). Exactly one terminal event (`Done` or `Failed`) closes the
//! stream; if the service shuts down first, the stream ends without a
//! terminal event and [`ResponseStream::collect`] reports
//! [`EngineError::Canceled`].

use cb_tokenizer::TokenId;
use crossbeam::channel::{Receiver, Sender};

use crate::engine::{EngineError, Response, TtftBreakdown};

/// One step in a request's lifecycle, in stream order.
// The Done variant carries the full Response by design (the terminal
// event moves once per request, never copies), so the size skew between
// variants is acceptable.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum Event {
    /// The request was accepted into the admission queue.
    Queued,
    /// A scheduler worker picked the request up and started serving it.
    Admitted,
    /// Prefill (pipelined blend) completed; decoding begins. The
    /// breakdown is the TTFT measurement (its `decode` field is zero).
    FirstToken(TtftBreakdown),
    /// One decoded answer token.
    Token(TokenId),
    /// Terminal: the request completed. The response's `ttft` carries the
    /// finalized decode/total durations.
    Done(Response),
    /// Terminal: the request failed.
    Failed(EngineError),
}

impl Event {
    /// True for the terminal events ([`Event::Done`] / [`Event::Failed`]).
    pub fn is_terminal(&self) -> bool {
        matches!(self, Event::Done(_) | Event::Failed(_))
    }
}

/// Receiving end of one request's event stream. Iterate it for the events
/// as they happen, or call [`ResponseStream::collect`] to block until the
/// terminal event and recover the one-shot
/// [`Engine::submit`](crate::engine::Engine::submit) shape.
#[derive(Debug)]
pub struct ResponseStream {
    rx: Receiver<Event>,
}

impl ResponseStream {
    pub(crate) fn new(rx: Receiver<Event>) -> Self {
        Self { rx }
    }

    /// A detached stream fed by an explicit sender — the hook remote front
    /// ends (e.g. a network gateway relaying events that arrived off the
    /// wire) use to re-materialize a request's stream outside the
    /// scheduler. Dropping the sender without a terminal event closes the
    /// stream, so [`ResponseStream::collect`] reports
    /// [`EngineError::Canceled`] exactly as it does for an in-process
    /// service shutdown.
    pub fn channel() -> (Sender<Event>, ResponseStream) {
        let (tx, rx) = crossbeam::channel::unbounded();
        (tx, ResponseStream { rx })
    }

    /// Blocks for the next event; `None` once the stream is closed (after
    /// the terminal event, or if the service shut down mid-flight).
    pub fn recv(&self) -> Option<Event> {
        self.rx.recv().ok()
    }

    /// Returns a buffered event without blocking.
    pub fn try_recv(&self) -> Option<Event> {
        self.rx.try_recv().ok()
    }

    /// Blocks until the stream's terminal event and returns the one-shot
    /// response — equivalent to [`Engine::submit`](crate::engine::Engine::submit)
    /// for the same request. Intermediate events are drained and dropped.
    pub fn collect(self) -> Result<Response, EngineError> {
        for event in self {
            match event {
                Event::Done(resp) => return Ok(resp),
                Event::Failed(err) => return Err(err),
                _ => {}
            }
        }
        Err(EngineError::Canceled)
    }
}

impl Iterator for ResponseStream {
    type Item = Event;

    fn next(&mut self) -> Option<Event> {
        self.rx.recv().ok()
    }
}

/// A replayed token diverged from the one already delivered at the same
/// position — the determinism contract (same profile, same seed, same
/// request ⇒ bit-identical tokens) was violated by a retry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplayMismatch {
    /// Zero-based position of the diverging token in the answer stream.
    pub position: usize,
    /// The token already delivered downstream at that position.
    pub delivered: TokenId,
    /// The token the replay produced instead.
    pub replayed: TokenId,
}

impl std::fmt::Display for ReplayMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "replayed token {} at position {} diverges from delivered token {}",
            self.replayed, self.position, self.delivered
        )
    }
}

impl std::error::Error for ReplayMismatch {}

/// Lifecycle stages in stream order, used as the filter's high-water mark.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Stage {
    None,
    Queued,
    Admitted,
    FirstToken,
}

/// Deduplicates a request's event stream across retries so downstream
/// consumers see **one seamless stream**.
///
/// A front end that transparently re-submits a request after its worker
/// died has already forwarded a prefix of the lifecycle — `Queued`,
/// `Admitted`, maybe `FirstToken` and some `Token`s. The fresh worker
/// replays the stream from the start. A `ReplayFilter` sits between the
/// upstream events and the downstream consumer:
///
/// - [`ReplayFilter::admit`] returns `Ok(true)` for events that are new
///   and must be forwarded, `Ok(false)` for replayed duplicates to
///   suppress, and `Err(ReplayMismatch)` if a replayed token is not
///   bit-identical to the one already delivered (determinism makes
///   identical replay a hard invariant, so callers assert on this).
/// - [`ReplayFilter::rewind`] resets the replay cursor when a retry
///   starts; the delivered history is kept so the replayed prefix can be
///   matched and suppressed.
///
/// Terminal events (`Done` / `Failed`) are always forwarded: the journal
/// holding the filter retires the entry on the first terminal it lets
/// through, so a request is never completed twice.
#[derive(Debug)]
pub struct ReplayFilter {
    delivered_stage: Stage,
    delivered: Vec<TokenId>,
    cursor_tokens: usize,
}

impl Default for ReplayFilter {
    fn default() -> Self {
        Self::new()
    }
}

impl ReplayFilter {
    /// A fresh filter: nothing delivered, cursor at the stream start.
    pub fn new() -> Self {
        Self {
            delivered_stage: Stage::None,
            delivered: Vec::new(),
            cursor_tokens: 0,
        }
    }

    fn stage_of(ev: &Event) -> Option<Stage> {
        match ev {
            Event::Queued => Some(Stage::Queued),
            Event::Admitted => Some(Stage::Admitted),
            Event::FirstToken(_) => Some(Stage::FirstToken),
            _ => None,
        }
    }

    /// Observes the next upstream event and decides whether to forward
    /// it downstream (see type docs).
    pub fn admit(&mut self, ev: &Event) -> Result<bool, ReplayMismatch> {
        if let Some(stage) = Self::stage_of(ev) {
            if stage <= self.delivered_stage {
                return Ok(false); // Replayed lifecycle event.
            }
            self.delivered_stage = stage;
            return Ok(true);
        }
        if let Event::Token(t) = ev {
            if self.cursor_tokens < self.delivered.len() {
                let expected = self.delivered[self.cursor_tokens];
                if expected != *t {
                    return Err(ReplayMismatch {
                        position: self.cursor_tokens,
                        delivered: expected,
                        replayed: *t,
                    });
                }
                self.cursor_tokens += 1;
                return Ok(false); // Replayed token, bit-identical.
            }
            self.delivered.push(*t);
            self.cursor_tokens += 1;
            return Ok(true);
        }
        Ok(true) // Terminal events always pass.
    }

    /// Starts a retry: replayed events will be matched against the
    /// delivered history from the beginning.
    pub fn rewind(&mut self) {
        self.cursor_tokens = 0;
    }

    /// How many answer tokens have been delivered downstream so far.
    pub fn tokens_delivered(&self) -> usize {
        self.delivered.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tokens(filter: &mut ReplayFilter, toks: &[TokenId]) -> Vec<TokenId> {
        toks.iter()
            .filter(|&&t| filter.admit(&Event::Token(t)).unwrap())
            .copied()
            .collect()
    }

    #[test]
    fn replay_filter_passes_a_clean_stream_through() {
        let mut f = ReplayFilter::new();
        assert!(f.admit(&Event::Queued).unwrap());
        assert!(f.admit(&Event::Admitted).unwrap());
        assert!(f
            .admit(&Event::FirstToken(TtftBreakdown::default()))
            .unwrap());
        assert_eq!(tokens(&mut f, &[7, 8, 9]), vec![7, 8, 9]);
        assert!(f.admit(&Event::Failed(EngineError::Canceled)).unwrap());
        assert_eq!(f.tokens_delivered(), 3);
    }

    #[test]
    fn replay_filter_suppresses_the_delivered_prefix() {
        let mut f = ReplayFilter::new();
        assert!(f.admit(&Event::Queued).unwrap());
        assert!(f.admit(&Event::Admitted).unwrap());
        assert!(f
            .admit(&Event::FirstToken(TtftBreakdown::default()))
            .unwrap());
        assert_eq!(tokens(&mut f, &[1, 2]), vec![1, 2]);

        // Worker died; the retry replays from the start.
        f.rewind();
        assert!(!f.admit(&Event::Queued).unwrap());
        assert!(!f.admit(&Event::Admitted).unwrap());
        assert!(!f
            .admit(&Event::FirstToken(TtftBreakdown::default()))
            .unwrap());
        assert_eq!(tokens(&mut f, &[1, 2, 3, 4]), vec![3, 4]);
        assert_eq!(f.tokens_delivered(), 4);
    }

    #[test]
    fn replay_filter_detects_divergent_replay() {
        let mut f = ReplayFilter::new();
        assert!(f.admit(&Event::Token(5)).unwrap());
        f.rewind();
        assert_eq!(
            f.admit(&Event::Token(6)),
            Err(ReplayMismatch {
                position: 0,
                delivered: 5,
                replayed: 6,
            })
        );
    }

    #[test]
    fn replay_filter_survives_multiple_rewinds() {
        let mut f = ReplayFilter::new();
        assert!(f.admit(&Event::Queued).unwrap());
        assert_eq!(tokens(&mut f, &[1]), vec![1]);
        f.rewind();
        assert!(!f.admit(&Event::Queued).unwrap());
        assert_eq!(tokens(&mut f, &[1, 2]), vec![2]);
        f.rewind();
        assert_eq!(tokens(&mut f, &[1, 2, 3]), vec![3]);
        assert_eq!(f.tokens_delivered(), 3);
    }
}
