//! Continuous-batching throughput: the decode loop at occupancy 1 vs a
//! shared [`DecodeBatch`], and client-observed TTFT under a batched
//! [`EngineService`].
//!
//! Two arms, both landing in `target/experiments/BENCH_batch.json`:
//!
//! - **decode** — raw decode tokens/s of a [`DecodeBatch`] at occupancy
//!   1/4/8/16/32 (noise model, dense weights). Every occupancy does
//!   identical per-sequence work, so the ratio to occupancy 1 is pure
//!   batching gain: one fused matmul per layer across all rows plus
//!   cross-sequence attention parallelism. Since the batched path is
//!   bit-identical to sequential decode, this speedup is free of any
//!   accuracy caveat.
//! - **serve** — a closed-loop [`EngineService`] with
//!   `decode_batch ∈ {1, 4, 8, 16, 32}`: every request carries a TTFT
//!   deadline, clients timestamp their own `FirstToken` events, and the
//!   row records p50/p99 TTFT, end-to-end tokens/s, and the service's
//!   deadline-miss count. This is the arm that shows batching does not
//!   buy throughput by trading away first-token latency.
//!
//! The smoke configuration doubles as the CI regression gate: batched
//! decode at occupancy 8 must not be slower than sequential decode.

use std::time::{Duration, Instant};

use cb_core::engine::{EngineBuilder, Request};
use cb_core::scheduler::{EngineService, ServiceConfig};
use cb_core::stream::Event;
use cb_model::{DecodeBatch, KvCache, Model, ModelConfig, ModelProfile};
use cb_tokenizer::{TokenId, TokenKind};

use crate::out::{emit, Row};

/// Options for the batch experiment.
#[derive(Clone, Copy, Debug)]
pub struct BatchOpts {
    /// Shrunken sizes/repetitions (seconds, for CI).
    pub smoke: bool,
}

fn filler_tokens(model: &Model, n: usize, salt: usize) -> Vec<TokenId> {
    let v = &model.cfg.vocab;
    (0..n)
        .map(|i| v.id(TokenKind::Filler(((i + salt) % 8) as u32)))
        .collect()
}

fn percentile_ms(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)] * 1e3
}

/// Raw decode throughput of the batch loop at each occupancy.
fn decode_arm(rows: &mut Vec<Row>, smoke: bool) {
    struct Shape {
        profile: ModelProfile,
        pname: &'static str,
        prompt_len: usize,
        steps: usize,
        batches: &'static [usize],
        threads: &'static [usize],
        reps: usize,
    }
    let shape = if smoke {
        Shape {
            profile: ModelProfile::Tiny,
            pname: "Small",
            prompt_len: 16,
            steps: 16,
            batches: &[1, 8],
            threads: &[2],
            reps: 3,
        }
    } else {
        Shape {
            profile: ModelProfile::Mistral7B,
            pname: "Standard",
            prompt_len: 48,
            steps: 32,
            batches: &[1, 4, 8, 16, 32],
            threads: &[1, 4],
            reps: 15,
        }
    };
    let model = Model::random(ModelConfig::standard(shape.profile, 7));
    let max_b = *shape.batches.iter().max().unwrap();
    // One untimed prefill per sequence; the timed region clones the warm
    // caches and decodes. Distinct salts give each sequence distinct
    // content, so nothing degenerates into identical rows.
    let prefilled: Vec<(KvCache, Vec<f32>)> = (0..max_b)
        .map(|i| {
            let toks = filler_tokens(&model, shape.prompt_len, i);
            let (cache, x) = model.prefill(&toks);
            (cache, x.row(x.rows() - 1).to_vec())
        })
        .collect();
    for &threads in shape.threads {
        cb_tensor::pool::set_threads(threads);
        let time_once = |b: usize| {
            let mut batch = DecodeBatch::new().without_stop();
            for (cache, resid) in prefilled.iter().take(b) {
                batch.admit(&model, cache.clone(), resid, shape.steps);
            }
            let t = Instant::now();
            batch.run_to_completion(&model, &mut |_, _| {});
            t.elapsed().as_secs_f64()
        };
        // The host's absolute speed drifts tens of percent between runs,
        // so unpaired best-of-reps ratios hinge on which occupancy caught
        // a fast window. Instead each rep times every occupancy
        // back-to-back (paired), the speedup is computed *within* the rep,
        // and the reported numbers are medians across reps; a warmup rep
        // is discarded.
        let nb = shape.batches.len();
        let mut tps_reps: Vec<Vec<f64>> = vec![Vec::new(); nb];
        let mut ratio_reps: Vec<Vec<f64>> = vec![Vec::new(); nb];
        for rep in 0..=shape.reps.max(1) {
            let mut rep_tps = vec![0.0; nb];
            for (bi, &b) in shape.batches.iter().enumerate() {
                rep_tps[bi] = (b * shape.steps) as f64 / time_once(b);
            }
            if rep == 0 {
                continue;
            }
            for bi in 0..nb {
                tps_reps[bi].push(rep_tps[bi]);
                ratio_reps[bi].push(rep_tps[bi] / rep_tps[0]);
            }
        }
        let median = |xs: &mut Vec<f64>| {
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            xs[xs.len() / 2]
        };
        let mut tps_at = Vec::new();
        for (bi, &b) in shape.batches.iter().enumerate() {
            let tps = median(&mut tps_reps[bi]);
            let speedup = median(&mut ratio_reps[bi]);
            tps_at.push((b, speedup));
            rows.push(
                Row::new("batch_decode")
                    .col("profile", shape.pname)
                    .col("threads", threads)
                    .col("batch", b)
                    .num("decode_tok_s", tps)
                    .num("speedup_vs_b1", speedup),
            );
        }
        // The CI regression gate: sharing the decode loop must never cost
        // throughput at occupancy 8 (bit-identical output, so there is no
        // accuracy excuse for a slowdown).
        if let Some(&(_, speedup)) = tps_at.iter().find(|(b, _)| *b == 8) {
            assert!(
                speedup >= 1.0,
                "batched decode at occupancy 8 slower than sequential \
                 ({speedup:.2}x median paired speedup, {threads} threads)"
            );
        }
    }
    cb_tensor::pool::set_threads(cb_tensor::pool::default_threads());
}

/// Client-observed TTFT and end-to-end throughput under a batched service.
fn serve_arm(rows: &mut Vec<Row>, smoke: bool) {
    let (n_requests, batches): (usize, &[usize]) = if smoke {
        (12, &[1, 8])
    } else {
        (64, &[1, 4, 8, 16, 32])
    };
    let deadline = Duration::from_millis(2000);
    for &b in batches {
        let engine = EngineBuilder::new(ModelProfile::Tiny).build().unwrap();
        let service = EngineService::new(
            engine,
            ServiceConfig::default()
                .workers(2)
                .queue_capacity(n_requests.max(64))
                .decode_batch(b),
        );
        let v = service.engine().model().cfg.vocab.clone();
        let (ne, na, nv) = (v.n_entities(), v.n_attrs(), v.n_values());
        let requests: Vec<Request> = (0..n_requests as u32)
            .map(|i| {
                let (e, a, val) = (i % ne, i % na, (i * 3 + 1) % nv);
                let chunk: Vec<_> = [
                    TokenKind::Entity(e),
                    TokenKind::Attr(a),
                    TokenKind::Value(val),
                    TokenKind::Sep,
                ]
                .map(|k| v.id(k))
                .to_vec();
                let id = service.engine().register_chunk(&chunk).unwrap();
                let q: Vec<_> = [
                    TokenKind::Query,
                    TokenKind::Entity(e),
                    TokenKind::Attr(a),
                    TokenKind::QMark,
                ]
                .map(|k| v.id(k))
                .to_vec();
                Request::new(vec![id], q)
                    .ratio(0.45)
                    .max_new_tokens(4)
                    .deadline(deadline)
            })
            .collect();
        // One client thread per request: TTFT must be timestamped when
        // the FirstToken event *arrives*, not when a sequential drain
        // eventually reads it out of the channel.
        let t0 = Instant::now();
        let mut ttfts_s = Vec::with_capacity(n_requests);
        let mut total_tokens = 0usize;
        std::thread::scope(|scope| {
            let clients: Vec<_> = requests
                .into_iter()
                .map(|req| {
                    let service = &service;
                    scope.spawn(move || {
                        let submitted = Instant::now();
                        let stream = service.submit_stream(req);
                        let mut ttft_s = None;
                        let mut tokens = 0usize;
                        for event in stream {
                            match event {
                                Event::FirstToken(_) if ttft_s.is_none() => {
                                    ttft_s = Some(submitted.elapsed().as_secs_f64());
                                }
                                Event::Token(_) => tokens += 1,
                                Event::Failed(err) => panic!("request failed: {err:?}"),
                                _ => {}
                            }
                        }
                        (ttft_s.expect("stream produced a first token"), tokens)
                    })
                })
                .collect();
            for c in clients {
                let (ttft_s, tokens) = c.join().expect("client thread");
                ttfts_s.push(ttft_s);
                total_tokens += tokens;
            }
        });
        let elapsed = t0.elapsed().as_secs_f64();
        let stats = service.stats();
        assert_eq!(stats.completed, n_requests as u64);
        assert_eq!(stats.failed, 0);
        ttfts_s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        rows.push(
            Row::new("batch_serve")
                .col("batch", b)
                .col("requests", n_requests)
                .num("ttft_p50_ms", percentile_ms(&ttfts_s, 0.50))
                .num("ttft_p99_ms", percentile_ms(&ttfts_s, 0.99))
                .num("tok_s", total_tokens as f64 / elapsed)
                .num("deadline_ms", deadline.as_secs_f64() * 1e3)
                .col("deadline_misses", stats.deadline_misses),
        );
    }
}

/// Runs the experiment with default options.
pub fn run() {
    run_opts(BatchOpts { smoke: false });
}

/// Runs the experiment.
pub fn run_opts(opts: BatchOpts) {
    let mut rows = Vec::new();
    decode_arm(&mut rows, opts.smoke);
    serve_arm(&mut rows, opts.smoke);
    emit("BENCH_batch", &rows);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_pick_sorted_positions() {
        let s = [0.001, 0.002, 0.003, 0.004];
        assert!((percentile_ms(&s, 0.0) - 1.0).abs() < 1e-9);
        assert!((percentile_ms(&s, 1.0) - 4.0).abs() < 1e-9);
        assert!((percentile_ms(&s, 0.5) - 3.0).abs() < 1e-9);
        assert_eq!(percentile_ms(&[], 0.5), 0.0);
    }
}
