//! Weight containers for heads and MLPs, plus seeded noise builders.

use cb_tensor::rope::RopeTable;
use cb_tensor::Matrix;
use rand::rngs::SmallRng;
use rand::Rng;

/// Position-dependent additive attention bias of a head.
///
/// Biases are computed from absolute positions at attention time, so they
/// survive KV cache relocation by construction (only RoPE'd keys need the
/// Appendix-A re-rotation).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AttnBias {
    /// No positional bias.
    None,
    /// Sharp previous-token kernel: `0` at offset −1, `-lambda·|Δ+1|`
    /// elsewhere (ALiBi-style relative bias).
    PrevToken {
        /// Per-position penalty; ≥ ~12 makes the head effectively hard.
        lambda: f32,
    },
    /// Subtracts `penalty` from the self position (`Δ = 0`) only. Used by
    /// the induction and recall heads so a query never matches itself.
    ExcludeSelf {
        /// Logit penalty at the self position.
        penalty: f32,
    },
    /// The lookup-head gate: excludes the self position and adds
    /// `sink_score` at absolute position 0 (the BOS sink). A genuine match
    /// scores above the sink; a noise match scores below it, so "no match"
    /// resolves to the sink instead of winner-take-all noise.
    LookupGate {
        /// Logit penalty at the self position.
        self_penalty: f32,
        /// Logit of the BOS sink at position 0.
        sink_score: f32,
    },
}

impl AttnBias {
    /// The bias added to the logit of query position `q_pos` attending to
    /// key position `k_pos` (callers guarantee `k_pos <= q_pos`).
    #[inline]
    pub fn bias(self, q_pos: usize, k_pos: usize) -> f32 {
        match self {
            AttnBias::None => 0.0,
            AttnBias::PrevToken { lambda } => {
                // Offset Δ = k_pos − q_pos ∈ {0, −1, −2, …}; peak at −1.
                let delta_plus_one = k_pos as f32 - q_pos as f32 + 1.0;
                -lambda * delta_plus_one.abs()
            }
            AttnBias::ExcludeSelf { penalty } => {
                if q_pos == k_pos {
                    -penalty
                } else {
                    0.0
                }
            }
            AttnBias::LookupGate {
                self_penalty,
                sink_score,
            } => {
                let mut b = 0.0;
                if q_pos == k_pos {
                    b -= self_penalty;
                }
                if k_pos == 0 {
                    b += sink_score;
                }
                b
            }
        }
    }
}

/// One attention head's weights.
#[derive(Clone, Debug)]
pub struct HeadWeights {
    /// Query projection, `d_model × head_dim`.
    pub wq: Matrix,
    /// Key projection, `d_model × head_dim`.
    pub wk: Matrix,
    /// Value projection, `d_model × head_dim`.
    pub wv: Matrix,
    /// Output projection, `head_dim × d_model`.
    pub wo: Matrix,
    /// Partial RoPE over the first `2·pairs()` head dims, if any.
    pub rope: Option<RopeTable>,
    /// Positional bias.
    pub bias: AttnBias,
    /// Multiplier on the QK logits (program heads use 1.0; noise heads use
    /// `1/sqrt(head_dim)` like a standard transformer).
    pub scale: f32,
}

impl HeadWeights {
    /// An inert head: all-zero projections, uniform attention over the
    /// causal window, zero output. Placeholder for unused head slots.
    pub fn zero(d_model: usize, head_dim: usize) -> Self {
        Self {
            wq: Matrix::zeros(d_model, head_dim),
            wk: Matrix::zeros(d_model, head_dim),
            wv: Matrix::zeros(d_model, head_dim),
            wo: Matrix::zeros(head_dim, d_model),
            rope: None,
            bias: AttnBias::None,
            scale: 1.0,
        }
    }

    /// A seeded random "mixing" head emulating the bulk of a trained model:
    /// standard-scaled QK logits, small value/output magnitudes so program
    /// subspaces are perturbed but never overwhelmed.
    ///
    /// `out_scale` bounds the magnitude of the head's residual contribution.
    pub fn noise(rng: &mut SmallRng, d_model: usize, head_dim: usize, out_scale: f32) -> Self {
        let g = |rng: &mut SmallRng, rows: usize, cols: usize, sd: f32| {
            Matrix::from_fn(rows, cols, |_, _| gauss(rng) * sd)
        };
        let qk_sd = 1.0 / (d_model as f32).sqrt();
        Self {
            wq: g(rng, d_model, head_dim, qk_sd),
            wk: g(rng, d_model, head_dim, qk_sd),
            wv: g(rng, d_model, head_dim, 1.0 / (d_model as f32).sqrt()),
            wo: g(rng, head_dim, d_model, out_scale / (head_dim as f32).sqrt()),
            rope: Some(RopeTable::new(head_dim.min(16), 10000.0)),
            bias: AttnBias::None,
            scale: 1.0 / (head_dim as f32).sqrt(),
        }
    }
}

/// A layer's feed-forward block.
#[derive(Clone, Debug)]
pub enum Mlp {
    /// No feed-forward (the residual passes through).
    None,
    /// Gated bilinear unit `x += wd((wg·x) ⊙ (wu·x))` — the fact-binding
    /// step of the compiled program (computes `code(ent) ⊙ code(prev)`).
    Bilinear {
        /// Gate projection, `d_model × hidden`.
        wg: Matrix,
        /// Up projection, `d_model × hidden`.
        wu: Matrix,
        /// Down projection, `hidden × d_model`.
        wd: Matrix,
    },
    /// Small tanh MLP `x += scale · w2·tanh(w1·x)` adding trained-model-like
    /// perturbation to every token.
    Noise {
        /// First projection, `d_model × hidden`.
        w1: Matrix,
        /// Second projection, `hidden × d_model`.
        w2: Matrix,
        /// Output magnitude bound.
        scale: f32,
    },
}

impl Mlp {
    /// A seeded noise MLP with the given output scale.
    pub fn noise(rng: &mut SmallRng, d_model: usize, hidden: usize, scale: f32) -> Self {
        let w1 = Matrix::from_fn(d_model, hidden, |_, _| gauss(rng) / (d_model as f32).sqrt());
        let w2 = Matrix::from_fn(hidden, d_model, |_, _| gauss(rng) / (hidden as f32).sqrt());
        Mlp::Noise { w1, w2, scale }
    }

    /// Applies the block to `x` (`rows × d_model`), returning the residual
    /// *delta* (caller adds it).
    pub fn forward(&self, x: &Matrix) -> Option<Matrix> {
        let mut out = Matrix::zeros(0, 0);
        let mut h1 = Matrix::zeros(0, 0);
        let mut h2 = Matrix::zeros(0, 0);
        self.forward_into(x, &mut h1, &mut h2, &mut out)
            .then_some(out)
    }

    /// [`Mlp::forward`] into caller-provided buffers (`h1`/`h2` are hidden
    /// scratch, `out` receives the delta). Returns false for [`Mlp::None`]
    /// (`out` untouched).
    pub fn forward_into(
        &self,
        x: &Matrix,
        h1: &mut Matrix,
        h2: &mut Matrix,
        out: &mut Matrix,
    ) -> bool {
        match self {
            Mlp::None => false,
            Mlp::Bilinear { wg, wu, wd } => {
                x.matmul_into(wg, h1);
                x.matmul_into(wu, h2);
                for (hv, uv) in h1.as_mut_slice().iter_mut().zip(h2.as_slice()) {
                    *hv *= *uv;
                }
                h1.matmul_into(wd, out);
                true
            }
            Mlp::Noise { w1, w2, scale } => {
                x.matmul_into(w1, h1);
                cb_tensor::ops::tanh(h1);
                h1.matmul_into(w2, out);
                out.scale(*scale);
                true
            }
        }
    }

    /// [`Mlp::forward`] on the seed's scalar reference kernels (the
    /// "scalar" arm of the throughput benchmarks).
    pub fn forward_reference(&self, x: &Matrix) -> Option<Matrix> {
        match self {
            Mlp::None => None,
            Mlp::Bilinear { wg, wu, wd } => {
                let g = x.matmul_reference(wg);
                let u = x.matmul_reference(wu);
                let mut h = g;
                for (hv, uv) in h.as_mut_slice().iter_mut().zip(u.as_slice()) {
                    *hv *= *uv;
                }
                Some(h.matmul_reference(wd))
            }
            Mlp::Noise { w1, w2, scale } => {
                let mut h = x.matmul_reference(w1);
                cb_tensor::ops::tanh(&mut h);
                let mut out = h.matmul_reference(w2);
                out.scale(*scale);
                Some(out)
            }
        }
    }
}

/// One transformer layer.
#[derive(Clone, Debug)]
pub struct Layer {
    /// Attention heads.
    pub heads: Vec<HeadWeights>,
    /// Feed-forward block.
    pub mlp: Mlp,
    /// Every head's `wq`/`wk`/`wv` packed into one
    /// `d_model × 3·kv_width` projection (columns `[Q | K | V]`, each
    /// head-major), so the per-layer QKV projection is a single blocked
    /// matmul instead of `3 × n_heads` small ones. Built once by
    /// [`Layer::new`] from the per-head weights it mirrors.
    pub fused_qkv: Matrix,
}

impl Layer {
    /// Builds a layer, packing the per-head projections into
    /// [`Layer::fused_qkv`].
    ///
    /// # Panics
    ///
    /// Panics if `heads` is empty or head shapes disagree.
    pub fn new(heads: Vec<HeadWeights>, mlp: Mlp) -> Self {
        assert!(!heads.is_empty(), "a layer needs at least one head");
        let d = heads[0].wq.rows();
        let hd = heads[0].wq.cols();
        let width = heads.len() * hd;
        let mut fused = Matrix::zeros(d, 3 * width);
        for (h, head) in heads.iter().enumerate() {
            assert_eq!((head.wq.rows(), head.wq.cols()), (d, hd));
            assert_eq!((head.wk.rows(), head.wk.cols()), (d, hd));
            assert_eq!((head.wv.rows(), head.wv.cols()), (d, hd));
            for r in 0..d {
                let row = fused.row_mut(r);
                for c in 0..hd {
                    row[h * hd + c] = head.wq[(r, c)];
                    row[width + h * hd + c] = head.wk[(r, c)];
                    row[2 * width + h * hd + c] = head.wv[(r, c)];
                }
            }
        }
        Self {
            heads,
            mlp,
            fused_qkv: fused,
        }
    }
}

/// Standard-normal sample via Box–Muller (keeps us off rand_distr).
pub(crate) fn gauss(rng: &mut SmallRng) -> f32 {
    let u1: f32 = rng.random::<f32>().max(1e-7);
    let u2: f32 = rng.random::<f32>();
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn prev_token_bias_peaks_at_minus_one() {
        let b = AttnBias::PrevToken { lambda: 10.0 };
        assert_eq!(b.bias(5, 4), 0.0);
        assert_eq!(b.bias(5, 5), -10.0);
        assert_eq!(b.bias(5, 3), -10.0);
        assert_eq!(b.bias(5, 0), -40.0);
    }

    #[test]
    fn exclude_self_hits_only_diagonal() {
        let b = AttnBias::ExcludeSelf { penalty: 100.0 };
        assert_eq!(b.bias(3, 3), -100.0);
        assert_eq!(b.bias(3, 2), 0.0);
    }

    #[test]
    fn lookup_gate_combines_sink_and_self() {
        let b = AttnBias::LookupGate {
            self_penalty: 100.0,
            sink_score: 40.0,
        };
        assert_eq!(b.bias(3, 0), 40.0);
        assert_eq!(b.bias(3, 3), -100.0);
        assert_eq!(b.bias(3, 2), 0.0);
        assert_eq!(b.bias(0, 0), -60.0);
    }

    #[test]
    fn bilinear_mlp_computes_elementwise_product() {
        // wg selects dim 0, wu selects dim 1, wd writes to dim 2.
        let mut wg = Matrix::zeros(3, 1);
        wg[(0, 0)] = 1.0;
        let mut wu = Matrix::zeros(3, 1);
        wu[(1, 0)] = 1.0;
        let mut wd = Matrix::zeros(1, 3);
        wd[(0, 2)] = 1.0;
        let mlp = Mlp::Bilinear { wg, wu, wd };
        let x = Matrix::from_vec(1, 3, vec![3.0, 4.0, 0.0]);
        let delta = mlp.forward(&x).unwrap();
        assert_eq!(delta.as_slice(), &[0.0, 0.0, 12.0]);
    }

    #[test]
    fn noise_mlp_output_is_bounded() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mlp = Mlp::noise(&mut rng, 16, 32, 0.05);
        let x = Matrix::from_fn(4, 16, |_, _| 1.0);
        let delta = mlp.forward(&x).unwrap();
        assert!(
            delta.max_abs() < 0.5,
            "noise too large: {}",
            delta.max_abs()
        );
    }

    #[test]
    fn noise_head_is_deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        let ha = HeadWeights::noise(&mut a, 16, 8, 0.1);
        let hb = HeadWeights::noise(&mut b, 16, 8, 0.1);
        assert_eq!(ha.wq, hb.wq);
        assert_eq!(ha.wo, hb.wo);
    }

    #[test]
    fn zero_head_has_zero_output_projection() {
        let h = HeadWeights::zero(8, 4);
        assert_eq!(h.wo.max_abs(), 0.0);
    }

    #[test]
    fn mlp_none_returns_none() {
        assert!(Mlp::None.forward(&Matrix::zeros(1, 4)).is_none());
    }
}
