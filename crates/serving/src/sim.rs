//! The discrete-event serving simulator.
//!
//! Single-GPU FIFO serving: each request waits for the GPU, then runs its
//! backend's admission work (loading cached KV, recomputing, prefilling
//! misses and the query). TTFT = completion of prefill − arrival.
//!
//! The *cost* of one admission comes from a [`ServingBackend`]: either the
//! analytic paper-scale delay model ([`AnalyticBackend`], the Figure-14
//! mechanics — see its docs for the per-scheme differences) or the real
//! engine measured end to end ([`EngineBackend`]). The event loop is the
//! same for both, so the saturation knees can be compared directly.
//!
//! [`AnalyticBackend`]: crate::backend::AnalyticBackend
//! [`EngineBackend`]: crate::backend::EngineBackend

use cb_baselines::SchemeKind;
use cb_storage::device::DeviceKind;
use cb_storage::perf::PerfModel;

use crate::backend::{AnalyticBackend, ServingBackend};
use crate::stats::LatencySummary;
use crate::workload::Workload;

/// Simulator configuration (the analytic backend's knobs plus the
/// queueing options shared by every backend).
#[derive(Clone, Debug)]
pub struct ServingConfig {
    /// Which scheme serves the requests.
    pub scheme: SchemeKind,
    /// Paper-scale delay model.
    pub perf: PerfModel,
    /// Device the KV store lives on.
    pub device: DeviceKind,
    /// CacheBlend's recompute ratio.
    pub recompute_ratio: f64,
    /// Paper-scale tokens per chunk (512 in Figure 14).
    pub chunk_tokens: usize,
    /// Query suffix tokens.
    pub query_tokens: usize,
    /// Decoded tokens per request (occupies the GPU after TTFT).
    pub decode_tokens: usize,
    /// KV store capacity in bytes.
    pub store_capacity: u64,
    /// TTFT deadline: requests whose first token lands later count as
    /// deadline misses in [`ServingStats`]. `None` disables the check.
    pub ttft_deadline_s: Option<f64>,
}

impl ServingConfig {
    /// The figure-14 setup for a scheme/model/device.
    pub fn fig14(scheme: SchemeKind, perf: PerfModel, device: DeviceKind) -> Self {
        Self {
            scheme,
            perf,
            device,
            recompute_ratio: 0.15,
            chunk_tokens: 512,
            query_tokens: 32,
            decode_tokens: 24,
            // 64 GB of KV storage.
            store_capacity: 64_000_000_000,
            ttft_deadline_s: None,
        }
    }
}

/// Aggregate results of one simulation.
#[derive(Clone, Debug)]
pub struct ServingStats {
    /// TTFT distribution.
    pub ttft: LatencySummary,
    /// Fraction of chunk lookups served from cache.
    pub hit_rate: f64,
    /// Completed requests / makespan.
    pub throughput_rps: f64,
    /// Peak bytes resident in the store.
    pub peak_store_bytes: u64,
    /// Entries evicted.
    pub evictions: u64,
    /// Most requests simultaneously waiting for the GPU (arrived but not
    /// yet started).
    pub peak_queue_depth: usize,
    /// Requests whose TTFT exceeded the configured deadline.
    pub deadline_misses: u64,
    /// Requests the backend failed to serve (excluded from the TTFT
    /// distribution; always zero for the analytic backend).
    pub failures: u64,
}

/// The discrete-event simulator.
pub struct Simulator {
    cfg: ServingConfig,
}

impl Simulator {
    /// Creates a simulator.
    pub fn new(cfg: ServingConfig) -> Self {
        Self { cfg }
    }

    /// Runs a workload to completion against the analytic delay-model
    /// backend built from this simulator's configuration.
    pub fn run(&self, workload: &Workload) -> ServingStats {
        let mut backend = AnalyticBackend::new(self.cfg.clone());
        Self::run_with(workload, &mut backend, self.cfg.ttft_deadline_s)
    }

    /// Runs a workload against any [`ServingBackend`] — the analytic
    /// model or the real engine — applying the same single-GPU FIFO
    /// queueing either way. `ttft_deadline_s` counts deadline misses
    /// against queueing-inclusive TTFT.
    pub fn run_with(
        workload: &Workload,
        backend: &mut dyn ServingBackend,
        ttft_deadline_s: Option<f64>,
    ) -> ServingStats {
        let mut gpu_free = 0.0f64;
        let mut ttfts = Vec::with_capacity(workload.requests.len());
        let mut lookups = 0u64;
        let mut hits = 0u64;
        let mut last_finish = 0.0f64;
        // Service start times, non-decreasing: FIFO admission on a single
        // GPU with sorted arrivals.
        let mut starts: Vec<f64> = Vec::with_capacity(workload.requests.len());
        let mut peak_queue_depth = 0usize;
        let mut deadline_misses = 0u64;
        let mut failures = 0u64;

        for req in &workload.requests {
            let adm = backend.serve(req);
            if adm.failed {
                failures += 1;
                continue;
            }
            let start = gpu_free.max(req.arrival_s);

            // Queue depth at this arrival: earlier requests still waiting
            // for the GPU (start time ahead of now), plus this request
            // itself when it cannot start immediately. (EngineService's
            // own peak counter samples right after enqueue, before any
            // worker pops, so its floor is 1 where this one's is 0.)
            let started = starts.partition_point(|&s| s <= req.arrival_s);
            let waiting = (starts.len() - started) + usize::from(start > req.arrival_s);
            peak_queue_depth = peak_queue_depth.max(waiting);
            starts.push(start);

            let ttft = start + adm.ttft_work_s - req.arrival_s;
            ttfts.push(ttft);
            if let Some(deadline) = ttft_deadline_s {
                if ttft > deadline {
                    deadline_misses += 1;
                }
            }
            gpu_free = start + adm.ttft_work_s.max(adm.gpu_work_s) + adm.decode_s;
            last_finish = gpu_free;
            lookups += adm.lookups;
            hits += adm.hits;
        }

        let makespan = last_finish.max(f64::EPSILON);
        let summary = backend.summary();
        ServingStats {
            ttft: LatencySummary::of(ttfts),
            hit_rate: if lookups > 0 {
                hits as f64 / lookups as f64
            } else {
                0.0
            },
            throughput_rps: (workload.requests.len() as u64 - failures) as f64 / makespan,
            peak_store_bytes: summary.peak_store_bytes,
            evictions: summary.evictions,
            peak_queue_depth,
            deadline_misses,
            failures,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadConfig;
    use cb_storage::perf::PaperModel;

    fn run(scheme: SchemeKind, rate: f64) -> ServingStats {
        let perf = PerfModel::on_a40(PaperModel::Mistral7B);
        let cfg = ServingConfig::fig14(scheme, perf, DeviceKind::NvmeSsd);
        let w = Workload::generate(&WorkloadConfig::extended(rate, 42));
        Simulator::new(cfg).run(&w)
    }

    #[test]
    fn blend_beats_full_recompute_on_ttft() {
        let blend = run(SchemeKind::CacheBlend, 0.5);
        let full = run(SchemeKind::FullRecompute, 0.5);
        assert!(
            blend.ttft.mean_s < full.ttft.mean_s / 1.5,
            "blend {} !≪ full {}",
            blend.ttft.mean_s,
            full.ttft.mean_s
        );
    }

    #[test]
    fn blend_beats_prefix_caching_on_ttft() {
        let blend = run(SchemeKind::CacheBlend, 0.5);
        let prefix = run(SchemeKind::PrefixCaching, 0.5);
        assert!(blend.ttft.mean_s < prefix.ttft.mean_s);
    }

    #[test]
    fn ttft_grows_with_request_rate() {
        let lo = run(SchemeKind::FullRecompute, 0.1);
        let hi = run(SchemeKind::FullRecompute, 2.0);
        assert!(
            hi.ttft.mean_s > lo.ttft.mean_s * 2.0,
            "queueing should inflate TTFT: {} vs {}",
            lo.ttft.mean_s,
            hi.ttft.mean_s
        );
    }

    #[test]
    fn blend_sustains_higher_rates_than_full() {
        // At a rate that saturates full recompute, CacheBlend stays near
        // its unloaded TTFT — the crossing structure of Figure 14.
        let rate = 0.8;
        let blend = run(SchemeKind::CacheBlend, rate);
        let full = run(SchemeKind::FullRecompute, rate);
        assert!(blend.ttft.p95_s < full.ttft.p95_s / 2.0);
    }

    #[test]
    fn chunk_reuse_produces_cache_hits() {
        let s = run(SchemeKind::CacheBlend, 0.5);
        assert!(s.hit_rate > 0.5, "hit rate {}", s.hit_rate);
    }

    #[test]
    fn prefix_caching_hits_less_than_chunk_caching() {
        // Only leading chunks can hit for prefix caching.
        let blend = run(SchemeKind::CacheBlend, 0.5);
        let prefix = run(SchemeKind::PrefixCaching, 0.5);
        assert!(prefix.hit_rate < blend.hit_rate);
    }

    #[test]
    fn full_reuse_is_fastest_scheme() {
        let reuse = run(SchemeKind::FullReuse, 0.5);
        let blend = run(SchemeKind::CacheBlend, 0.5);
        assert!(reuse.ttft.mean_s <= blend.ttft.mean_s + 1e-9);
    }

    #[test]
    fn store_capacity_bounds_residency() {
        let perf = PerfModel::on_a40(PaperModel::Mistral7B);
        let mut cfg = ServingConfig::fig14(SchemeKind::CacheBlend, perf, DeviceKind::NvmeSsd);
        cfg.store_capacity = (20.0 * perf.total_kv_bytes(cfg.chunk_tokens)) as u64;
        let w = Workload::generate(&WorkloadConfig::extended(0.5, 42));
        let s = Simulator::new(cfg.clone()).run(&w);
        assert!(s.peak_store_bytes <= cfg.store_capacity);
        assert!(s.evictions > 0, "tiny store must evict");
    }

    #[test]
    fn queue_depth_grows_past_saturation() {
        let lo = run(SchemeKind::FullRecompute, 0.05);
        let hi = run(SchemeKind::FullRecompute, 2.0);
        assert!(
            hi.peak_queue_depth > lo.peak_queue_depth.max(3),
            "saturated queue {} !> unloaded queue {}",
            hi.peak_queue_depth,
            lo.peak_queue_depth
        );
    }

    #[test]
    fn deadline_misses_track_the_knee() {
        let perf = PerfModel::on_a40(PaperModel::Mistral7B);
        let unloaded = perf.ttft_full_prefill(6 * 512 + 32);
        let mut cfg = ServingConfig::fig14(SchemeKind::FullRecompute, perf, DeviceKind::NvmeSsd);
        cfg.ttft_deadline_s = Some(3.0 * unloaded);
        let gen = |rate| Workload::generate(&WorkloadConfig::extended(rate, 42));
        let lo = Simulator::new(cfg.clone()).run(&gen(0.05));
        let hi = Simulator::new(cfg).run(&gen(2.0));
        assert_eq!(lo.deadline_misses, 0, "unloaded requests meet the deadline");
        assert!(
            hi.deadline_misses > 100,
            "saturation should blow the deadline: {}",
            hi.deadline_misses
        );
    }
}
