//! One module per reproduced figure/table; binaries in `src/bin/` are thin
//! wrappers and `all_experiments` runs the lot. See DESIGN.md §8 for the
//! experiment index and EXPERIMENTS.md for recorded results.

pub mod batch;
pub mod fig02;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig10;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod kernels;
pub mod obs_overhead;
pub mod storage;
pub mod tab_delay;

/// Runs every experiment in figure order.
pub fn run_all() {
    kernels::run();
    batch::run();
    obs_overhead::run();
    storage::run();
    tab_delay::run();
    fig02::run();
    fig06::run();
    fig07::run();
    fig08::run();
    fig10::run();
    fig12::run();
    fig13::run();
    fig14::run();
    fig15::run();
    fig16::run();
    fig17::run();
}
