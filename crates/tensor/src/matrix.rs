//! Row-major dense f32 matrix and matmul kernels.
//!
//! Two kernel families live here:
//!
//! - **Blocked kernels** ([`Matrix::matmul`], [`Matrix::matmul_transposed`]
//!   and their `_into` / column-block variants): register-tiled loops with
//!   lane-split accumulators the compiler vectorizes without needing FP
//!   reassociation, a dense fast path with no per-element branches, and a
//!   sparse path that skips all-zero rows of the right-hand operand. The
//!   sparse path is chosen by a one-time density probe cached per matrix
//!   (compiled program weights are heavily row-sparse — e.g. a subspace
//!   read touches 32 of 224 rows — while noise weights are dense).
//!   Large products are split across the crate's [`crate::pool`] thread
//!   pool by disjoint output-row ranges, which keeps results bit-identical
//!   for any thread count.
//! - **Reference kernels** ([`Matrix::matmul_reference`],
//!   [`Matrix::matmul_transposed_reference`]): the original scalar loops,
//!   kept verbatim as the parity baseline for tests and the "scalar" arm
//!   of the throughput benchmarks.
//!
//! `rows × cols` values stored contiguously; row `r` occupies
//! `data[r*cols .. (r+1)*cols]`. This is the only tensor type the
//! reproduction needs: vectors are `1 × n` or `n × 1` matrices, and the
//! 3-D activations of a transformer layer are handled as `(seq, dim)`
//! matrices per layer.

use std::fmt;
use std::ops::{Index, IndexMut};
use std::sync::OnceLock;

use crate::pool;

/// Row unroll of the dense kernel (parallel row chunks stay aligned to it
/// so every chunk groups rows the way the serial kernel would; grouping
/// never changes per-element accumulation order, so this is purely a
/// locality choice).
const MR: usize = 8;
/// Accumulator lanes of the dot-product (transposed) kernel.
const LANES: usize = 16;
/// Column pairs computed together by the transposed kernel.
const JB: usize = 2;
/// A matrix axis is classified sparse when at most this fraction of its
/// rows (or columns) contain a non-zero.
const SPARSE_FRACTION: f32 = 0.75;
/// Minimum output rows before a matmul is split across the thread pool.
const PAR_MIN_ROWS: usize = 64;

/// One-time density probe of a matrix, along both axes: the `k` loop of a
/// product can skip a left operand's all-zero *columns* and a right
/// operand's all-zero *rows* (either way the skipped products are exactly
/// zero). Compiled program weights are row-sparse; compiled embeddings are
/// column-sparse.
#[derive(Clone, Debug)]
struct DensityProfile {
    /// Non-zero rows, when at most `SPARSE_FRACTION` of rows are non-zero.
    nz_rows: Option<Box<[u32]>>,
    /// Non-zero columns, under the same threshold.
    nz_cols: Option<Box<[u32]>>,
}

/// Which `k` indices participate in a product.
enum KSet<'a> {
    /// Every row (dense operand).
    All(usize),
    /// Only these rows hold non-zeros.
    List(&'a [u32]),
}

impl KSet<'_> {
    #[inline]
    fn for_each(&self, mut f: impl FnMut(usize)) {
        match self {
            KSet::All(n) => {
                for k in 0..*n {
                    f(k);
                }
            }
            KSet::List(rows) => {
                for &k in *rows {
                    f(k as usize);
                }
            }
        }
    }
}

/// A row-major dense `f32` matrix.
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
    /// Cached [`DensityProfile`]. Reset by every mutating accessor; never
    /// observable through `PartialEq`.
    profile: OnceLock<DensityProfile>,
}

impl Clone for Matrix {
    fn clone(&self) -> Self {
        let profile = OnceLock::new();
        if let Some(p) = self.profile.get() {
            let _ = profile.set(p.clone());
        }
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.clone(),
            profile,
        }
    }
}

impl PartialEq for Matrix {
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows && self.cols == other.cols && self.data == other.data
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)
    }
}

impl Default for Matrix {
    /// The empty `0 × 0` matrix (scratch buffers start here).
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

impl Matrix {
    /// Creates a zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
            profile: OnceLock::new(),
        }
    }

    /// Creates a matrix from an existing row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Self {
            rows,
            cols,
            data,
            profile: OnceLock::new(),
        }
    }

    /// Creates a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self::from_vec(rows, cols, data)
    }

    /// The identity matrix of size `n × n`.
    pub fn identity(n: usize) -> Self {
        Self::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Invalidates the cached density profile; must precede every mutable
    /// exposure of the data (a stale sparse profile would let the kernels
    /// skip rows that have since become non-zero).
    #[inline]
    fn touch(&mut self) {
        if self.profile.get().is_some() {
            self.profile.take();
        }
    }

    /// Immutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        self.touch();
        &mut self.data
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        self.touch();
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies `src` into row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `src.len() != cols`.
    pub fn set_row(&mut self, r: usize, src: &[f32]) {
        assert_eq!(src.len(), self.cols);
        self.row_mut(r).copy_from_slice(src);
    }

    /// Reshapes to `rows × cols` with every element zeroed, reusing the
    /// existing allocation when it is large enough. The workhorse of the
    /// `_into` kernels and scratch arenas.
    pub fn zero_resize(&mut self, rows: usize, cols: usize) {
        self.touch();
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Reshapes to `rows × cols` WITHOUT clearing: contents are whatever
    /// the buffer previously held. Only for callers that overwrite every
    /// element before reading (skips a full memset on large outputs —
    /// score kernels, the KV byte decoder).
    pub fn resize_dirty(&mut self, rows: usize, cols: usize) {
        self.touch();
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Reserves capacity for `extra` additional rows without changing the
    /// shape (so steady-state [`Matrix::extend_rows`] growth allocates
    /// nothing).
    pub fn reserve_rows(&mut self, extra: usize) {
        self.data.reserve(extra * self.cols);
    }

    /// Appends the rows of `src` in place (no intermediate matrix, unlike
    /// the historical `vcat(&[&self, src])` pattern which copied the whole
    /// accumulated buffer on every append).
    ///
    /// # Panics
    ///
    /// Panics if the column counts differ.
    pub fn extend_rows(&mut self, src: &Matrix) {
        self.extend_from_rows(src, 0, src.rows);
    }

    /// Appends rows `lo..hi` of `src` in place.
    ///
    /// # Panics
    ///
    /// Panics if the column counts differ or `hi > src.rows()`.
    pub fn extend_from_rows(&mut self, src: &Matrix, lo: usize, hi: usize) {
        assert_eq!(src.cols, self.cols, "extend_rows column mismatch");
        assert!(lo <= hi && hi <= src.rows);
        self.touch();
        self.data
            .extend_from_slice(&src.data[lo * src.cols..hi * src.cols]);
        self.rows += hi - lo;
    }

    /// Returns a new matrix containing only the rows listed in `idx`
    /// (in that order). Used by selective prefill to gather HKVD tokens.
    pub fn gather_rows(&self, idx: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(0, self.cols);
        self.gather_rows_into(idx, &mut out);
        out
    }

    /// [`Matrix::gather_rows`] into a caller-provided buffer.
    pub fn gather_rows_into(&self, idx: &[usize], out: &mut Matrix) {
        out.touch();
        out.rows = idx.len();
        out.cols = self.cols;
        out.data.clear();
        out.data.reserve(idx.len() * self.cols);
        for &src in idx {
            out.data
                .extend_from_slice(&self.data[src * self.cols..(src + 1) * self.cols]);
        }
    }

    /// Scatters the rows of `src` back into `self` at positions `idx`.
    /// The inverse of [`Matrix::gather_rows`].
    ///
    /// # Panics
    ///
    /// Panics if `src.rows() != idx.len()` or the column counts differ.
    pub fn scatter_rows(&mut self, idx: &[usize], src: &Matrix) {
        assert_eq!(src.rows(), idx.len());
        assert_eq!(src.cols(), self.cols);
        for (s, &dst) in idx.iter().enumerate() {
            self.row_mut(dst).copy_from_slice(src.row(s));
        }
    }

    /// The cached one-time density probe (one scan computes both axes).
    fn density(&self) -> &DensityProfile {
        self.profile.get_or_init(|| {
            let mut nz_rows = Vec::new();
            let mut col_has = vec![false; self.cols];
            for r in 0..self.rows {
                let mut any = false;
                for (c, &v) in self.row(r).iter().enumerate() {
                    if v != 0.0 {
                        any = true;
                        col_has[c] = true;
                    }
                }
                if any {
                    nz_rows.push(r as u32);
                }
            }
            let nz_cols: Vec<u32> = col_has
                .iter()
                .enumerate()
                .filter_map(|(c, &h)| h.then_some(c as u32))
                .collect();
            DensityProfile {
                nz_rows: ((nz_rows.len() as f32) <= self.rows as f32 * SPARSE_FRACTION)
                    .then(|| nz_rows.into_boxed_slice()),
                nz_cols: ((nz_cols.len() as f32) <= self.cols as f32 * SPARSE_FRACTION)
                    .then(|| nz_cols.into_boxed_slice()),
            }
        })
    }

    /// Matrix product `self × rhs`.
    ///
    /// Allocating wrapper over [`Matrix::matmul_into`].
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_into(rhs, &mut out);
        out
    }

    /// Matrix product `self × rhs` written into `out` (resized, previous
    /// contents discarded, allocation reused when large enough).
    ///
    /// Dispatches on `rhs`'s cached density probe: dense operands take the
    /// register-tiled branch-free kernel; row-sparse operands (compiled
    /// program weights) skip their all-zero rows outright. Splits output
    /// rows across the [`crate::pool`] when the product is large enough —
    /// per-row accumulation order is fixed, so results are bit-identical
    /// for every pool size.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        out.zero_resize(self.rows, rhs.cols);
        let (m, n, kdim) = (self.rows, rhs.cols, self.cols);
        if m == 0 || n == 0 {
            return;
        }
        let ks = pick_kset(self.density(), rhs.density(), kdim);
        // Check the size threshold before touching the global pool: tiny
        // products (every decode-step matmul) skip the RwLock/Arc traffic.
        if m < PAR_MIN_ROWS {
            gemm_block(&self.data, kdim, &rhs.data, n, 0, &mut out.data, m, n, &ks);
            return;
        }
        let pool = pool::current();
        if pool.threads() <= 1 {
            gemm_block(&self.data, kdim, &rhs.data, n, 0, &mut out.data, m, n, &ks);
            return;
        }
        // Chunk rows MR-aligned so every row sees the same tile shape it
        // would serially (bit-identical output for any split).
        let threads = pool.threads();
        let chunk = (m.div_ceil(threads)).div_ceil(MR) * MR;
        let a = &self.data;
        let b = &rhs.data;
        let jobs: Vec<pool::Job<'_>> = out
            .data
            .chunks_mut(chunk * n)
            .enumerate()
            .map(|(i, o)| {
                let lo = i * chunk;
                let rows = o.len() / n;
                let a_part = &a[lo * kdim..(lo + rows) * kdim];
                let ks = pick_kset(self.density(), rhs.density(), kdim);
                let job: pool::Job<'_> = Box::new(move || {
                    gemm_block(a_part, kdim, b, n, 0, o, rows, n, &ks);
                });
                job
            })
            .collect();
        pool.run(jobs);
    }

    /// `self × rhs[:, lo..hi]` written into `out` — the right-hand operand
    /// is a column block viewed in place (no copy). This is the attention
    /// context kernel `P × V_h` over a head's columns.
    pub fn matmul_cols_into(&self, rhs: &Matrix, lo: usize, hi: usize, out: &mut Matrix) {
        assert_eq!(self.cols, rhs.rows, "matmul_cols shape mismatch");
        assert!(lo <= hi && hi <= rhs.cols);
        out.zero_resize(self.rows, hi - lo);
        if self.rows == 0 || hi == lo {
            return;
        }
        gemm_block(
            &self.data,
            self.cols,
            &rhs.data,
            rhs.cols,
            lo,
            &mut out.data,
            self.rows,
            hi - lo,
            &KSet::All(self.cols),
        );
    }

    /// Matrix product `self × rhsᵀ` without materializing the transpose.
    ///
    /// This is the attention-score kernel: `Q · Kᵀ`.
    pub fn matmul_transposed(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_transposed_into(rhs, &mut out);
        out
    }

    /// [`Matrix::matmul_transposed`] into a caller-provided buffer.
    pub fn matmul_transposed_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_transposed shape mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        self.matmul_transposed_block_into(rhs, 0, self.cols, out);
    }

    /// `self[:, lo..hi] × (rhs[:, lo..hi])ᵀ` into `out`: both operands are
    /// viewed through the same column block in place. This is the per-head
    /// attention-score kernel `Q_h · K_hᵀ` — no `col_block` copies.
    ///
    /// # Panics
    ///
    /// Panics if the column counts differ or the block is out of range.
    pub fn matmul_transposed_block_into(
        &self,
        rhs: &Matrix,
        lo: usize,
        hi: usize,
        out: &mut Matrix,
    ) {
        assert_eq!(self.cols, rhs.cols, "column-block width mismatch");
        assert!(lo <= hi && hi <= self.cols);
        out.zero_resize(self.rows, rhs.rows);
        let (m, jn) = (self.rows, rhs.rows);
        if m == 0 || jn == 0 {
            return;
        }
        let (lda, ldb) = (self.cols, rhs.cols);
        let a = &self.data;
        let b = &rhs.data;
        let full_j = jn - jn % JB;
        for i in 0..m {
            let ar = &a[i * lda + lo..i * lda + hi];
            let orow = &mut out.data[i * jn..(i + 1) * jn];
            let mut j = 0;
            while j < full_j {
                let b0 = &b[j * ldb + lo..j * ldb + hi];
                let b1 = &b[(j + 1) * ldb + lo..(j + 1) * ldb + hi];
                let (d0, d1) = dot2(ar, b0, b1);
                orow[j] = d0;
                orow[j + 1] = d1;
                j += JB;
            }
            for (jj, orv) in orow.iter_mut().enumerate().skip(full_j) {
                let br = &b[jj * ldb + lo..jj * ldb + hi];
                *orv = dot1(ar, br);
            }
        }
    }

    /// [`Matrix::matmul_transposed_block_into`] with a per-row column
    /// limit: row `i` computes dots only against `rhs` rows `0..limits[i]`
    /// and fills the rest with exact `0.0`. This is the causal attention
    /// score kernel — masked positions are never computed at all (for
    /// prefill that halves the score work), and the exact zeros let the
    /// downstream context product skip them too.
    ///
    /// # Panics
    ///
    /// Panics if `limits.len() != self.rows()` or any limit exceeds
    /// `rhs.rows()`.
    pub fn matmul_transposed_block_limited_into(
        &self,
        rhs: &Matrix,
        lo: usize,
        hi: usize,
        limits: &[usize],
        scale: f32,
        out: &mut Matrix,
    ) {
        assert_eq!(self.cols, rhs.cols, "column-block width mismatch");
        assert!(lo <= hi && hi <= self.cols);
        assert_eq!(limits.len(), self.rows, "one limit per query row");
        // Every element is written below (live dots + zero tail), so the
        // usual zeroing memset would be pure overhead on big score
        // matrices.
        out.resize_dirty(self.rows, rhs.rows);
        let (m, jn) = (self.rows, rhs.rows);
        if m == 0 || jn == 0 {
            return;
        }
        assert!(limits.iter().all(|&l| l <= jn), "limit exceeds key rows");
        let (lda, ldb) = (self.cols, rhs.cols);
        let a = &self.data;
        let b = &rhs.data;
        // Query tiling: each key quad is loaded once per QI query rows
        // (the key matrix exceeds L2 at paper-scale contexts, so streaming
        // it per query row would be memory-bound).
        const QI: usize = 8;
        let mut i0 = 0;
        while i0 < m {
            let rows = QI.min(m - i0);
            let cmin = limits[i0..i0 + rows].iter().copied().min().unwrap();
            let full = cmin - cmin % 4;
            let mut j = 0;
            while j < full {
                let b0 = &b[j * ldb + lo..j * ldb + hi];
                let b1 = &b[(j + 1) * ldb + lo..(j + 1) * ldb + hi];
                let b2 = &b[(j + 2) * ldb + lo..(j + 2) * ldb + hi];
                let b3 = &b[(j + 3) * ldb + lo..(j + 3) * ldb + hi];
                for r in 0..rows {
                    let i = i0 + r;
                    let ar = &a[i * lda + lo..i * lda + hi];
                    let d = dot4(ar, b0, b1, b2, b3);
                    let o = i * jn + j;
                    out.data[o] = d[0] * scale;
                    out.data[o + 1] = d[1] * scale;
                    out.data[o + 2] = d[2] * scale;
                    out.data[o + 3] = d[3] * scale;
                }
                j += 4;
            }
            // Per-row remainder past the tile's shared prefix, plus the
            // zero tail.
            for r in 0..rows {
                let i = i0 + r;
                let lim = limits[i];
                let ar = &a[i * lda + lo..i * lda + hi];
                let orow = &mut out.data[i * jn..(i + 1) * jn];
                let mut jj = full;
                while jj + 4 <= lim {
                    let b0 = &b[jj * ldb + lo..jj * ldb + hi];
                    let b1 = &b[(jj + 1) * ldb + lo..(jj + 1) * ldb + hi];
                    let b2 = &b[(jj + 2) * ldb + lo..(jj + 2) * ldb + hi];
                    let b3 = &b[(jj + 3) * ldb + lo..(jj + 3) * ldb + hi];
                    let d = dot4(ar, b0, b1, b2, b3);
                    orow[jj] = d[0] * scale;
                    orow[jj + 1] = d[1] * scale;
                    orow[jj + 2] = d[2] * scale;
                    orow[jj + 3] = d[3] * scale;
                    jj += 4;
                }
                while jj < lim {
                    let br = &b[jj * ldb + lo..jj * ldb + hi];
                    orow[jj] = dot1(ar, br) * scale;
                    jj += 1;
                }
                orow[lim..].fill(0.0);
            }
            i0 += rows;
        }
    }

    /// The seed's scalar `matmul` (ikj loop with a per-element zero skip),
    /// kept verbatim as the parity/throughput baseline.
    pub fn matmul_reference(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue; // Compiled program weights are sparse.
                }
                let b_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// The seed's scalar `matmul_transposed` (single sequential dot per
    /// output element), kept verbatim as the parity/throughput baseline.
    pub fn matmul_transposed_reference(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_transposed shape mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..rhs.rows {
                let b_row = rhs.row(j);
                let mut acc = 0.0f32;
                for (&a, &b) in a_row.iter().zip(b_row.iter()) {
                    acc += a * b;
                }
                out.data[i * rhs.rows + j] = acc;
            }
        }
        out
    }

    /// Element-wise in-place addition.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        self.touch();
        for (a, &b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b;
        }
    }

    /// Element-wise in-place scaling.
    pub fn scale(&mut self, s: f32) {
        self.touch();
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Concatenates matrices vertically (stacking rows).
    ///
    /// # Panics
    ///
    /// Panics if the column counts differ or `parts` is empty.
    pub fn vcat(parts: &[&Matrix]) -> Matrix {
        Matrix::vcat_from(parts.iter().copied())
    }

    /// [`Matrix::vcat`] over any re-iterable source of matrix references —
    /// callers no longer need to collect a `Vec<&Matrix>` first.
    ///
    /// # Panics
    ///
    /// Panics if the column counts differ or the iterator is empty.
    pub fn vcat_from<'a, I>(parts: I) -> Matrix
    where
        I: IntoIterator<Item = &'a Matrix>,
        I::IntoIter: Clone,
    {
        let iter = parts.into_iter();
        let mut sizing = iter.clone();
        let first = sizing.next().expect("vcat of zero matrices");
        let cols = first.cols;
        let rows: usize = first.rows + sizing.map(|m| m.rows).sum::<usize>();
        let mut data = Vec::with_capacity(rows * cols);
        for m in iter {
            assert_eq!(m.cols, cols, "vcat column mismatch");
            data.extend_from_slice(&m.data);
        }
        Matrix::from_vec(rows, cols, data)
    }

    /// Returns the submatrix of columns `lo..hi` (copied).
    ///
    /// Attention slices per-head column blocks out of head-major K/V rows.
    pub fn col_block(&self, lo: usize, hi: usize) -> Matrix {
        assert!(lo <= hi && hi <= self.cols);
        let mut out = Matrix::zeros(self.rows, hi - lo);
        for r in 0..self.rows {
            out.row_mut(r)
                .copy_from_slice(&self.data[r * self.cols + lo..r * self.cols + hi]);
        }
        out
    }

    /// Writes `src` into columns `lo..lo + src.cols()` of `self`.
    ///
    /// # Panics
    ///
    /// Panics if the row counts differ or the block exceeds the width.
    pub fn set_col_block(&mut self, lo: usize, src: &Matrix) {
        assert_eq!(self.rows, src.rows());
        assert!(lo + src.cols() <= self.cols);
        self.touch();
        for r in 0..self.rows {
            let dst = &mut self.data[r * self.cols + lo..r * self.cols + lo + src.cols()];
            dst.copy_from_slice(src.row(r));
        }
    }

    /// Returns the submatrix of rows `lo..hi`.
    pub fn slice_rows(&self, lo: usize, hi: usize) -> Matrix {
        assert!(lo <= hi && hi <= self.rows);
        Matrix::from_vec(
            hi - lo,
            self.cols,
            self.data[lo * self.cols..hi * self.cols].to_vec(),
        )
    }

    /// Frobenius norm of the difference `self - rhs`.
    pub fn frobenius_distance(&self, rhs: &Matrix) -> f32 {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        self.data
            .iter()
            .zip(rhs.data.iter())
            .map(|(&a, &b)| (a - b) * (a - b))
            .sum::<f32>()
            .sqrt()
    }

    /// Maximum absolute element.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }
}

/// Chooses the `k` set of a product: the shorter of the left operand's
/// non-zero columns and the right operand's non-zero rows (skipping either
/// side's structural zeros is exact), or the full range when both are
/// dense.
fn pick_kset<'a>(lhs: &'a DensityProfile, rhs: &'a DensityProfile, kdim: usize) -> KSet<'a> {
    match (&lhs.nz_cols, &rhs.nz_rows) {
        (Some(c), Some(r)) => KSet::List(if c.len() <= r.len() { c } else { r }),
        (Some(c), None) => KSet::List(c),
        (None, Some(r)) => KSet::List(r),
        (None, None) => KSet::All(kdim),
    }
}

/// Lane-split dot product over two equal-length slices: lane accumulators
/// keep the FP adds independent, so the loop vectorizes without
/// reassociation licence. Accumulation order is fixed (deterministic).
#[inline]
fn dot1(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = [0.0f32; LANES];
    let mut ach = a.chunks_exact(LANES);
    let mut bch = b.chunks_exact(LANES);
    for (ca, cb) in (&mut ach).zip(&mut bch) {
        for t in 0..LANES {
            acc[t] = ca[t].mul_add(cb[t], acc[t]);
        }
    }
    let mut s = 0.0f32;
    for &lane in &acc {
        s += lane;
    }
    for (&x, &y) in ach.remainder().iter().zip(bch.remainder()) {
        s += x * y;
    }
    s
}

/// Two dot products sharing the left operand (halves the `a` loads).
#[inline]
fn dot2(a: &[f32], b0: &[f32], b1: &[f32]) -> (f32, f32) {
    let mut acc0 = [0.0f32; LANES];
    let mut acc1 = [0.0f32; LANES];
    let mut ach = a.chunks_exact(LANES);
    let mut b0ch = b0.chunks_exact(LANES);
    let mut b1ch = b1.chunks_exact(LANES);
    for ((ca, c0), c1) in (&mut ach).zip(&mut b0ch).zip(&mut b1ch) {
        for t in 0..LANES {
            acc0[t] = ca[t].mul_add(c0[t], acc0[t]);
            acc1[t] = ca[t].mul_add(c1[t], acc1[t]);
        }
    }
    let (mut s0, mut s1) = (0.0f32, 0.0f32);
    for t in 0..LANES {
        s0 += acc0[t];
        s1 += acc1[t];
    }
    for ((&x, &y0), &y1) in ach
        .remainder()
        .iter()
        .zip(b0ch.remainder())
        .zip(b1ch.remainder())
    {
        s0 += x * y0;
        s1 += x * y1;
    }
    (s0, s1)
}

/// Four dot products sharing the left operand.
#[inline]
fn dot4(a: &[f32], b0: &[f32], b1: &[f32], b2: &[f32], b3: &[f32]) -> [f32; 4] {
    let mut acc0 = [0.0f32; LANES];
    let mut acc1 = [0.0f32; LANES];
    let mut acc2 = [0.0f32; LANES];
    let mut acc3 = [0.0f32; LANES];
    let mut ach = a.chunks_exact(LANES);
    let mut b0ch = b0.chunks_exact(LANES);
    let mut b1ch = b1.chunks_exact(LANES);
    let mut b2ch = b2.chunks_exact(LANES);
    let mut b3ch = b3.chunks_exact(LANES);
    for ((((ca, c0), c1), c2), c3) in (&mut ach)
        .zip(&mut b0ch)
        .zip(&mut b1ch)
        .zip(&mut b2ch)
        .zip(&mut b3ch)
    {
        for t in 0..LANES {
            acc0[t] = ca[t].mul_add(c0[t], acc0[t]);
            acc1[t] = ca[t].mul_add(c1[t], acc1[t]);
            acc2[t] = ca[t].mul_add(c2[t], acc2[t]);
            acc3[t] = ca[t].mul_add(c3[t], acc3[t]);
        }
    }
    let mut s = [0.0f32; 4];
    for t in 0..LANES {
        s[0] += acc0[t];
        s[1] += acc1[t];
        s[2] += acc2[t];
        s[3] += acc3[t];
    }
    for ((((&x, &y0), &y1), &y2), &y3) in ach
        .remainder()
        .iter()
        .zip(b0ch.remainder())
        .zip(b1ch.remainder())
        .zip(b2ch.remainder())
        .zip(b3ch.remainder())
    {
        s[0] += x * y0;
        s[1] += x * y1;
        s[2] += x * y2;
        s[3] += x * y3;
    }
    s
}

/// The dense GEMM core: `out[m × n] += a[m × kdim] × b[·, bcol..bcol+n]`,
/// with `b` viewed through row stride `ldb` at column offset `bcol`.
/// `out` is contiguous `m × n` and must be zeroed. `ks` selects the
/// participating rows of `b` (the probed sparse path).
///
/// The kernel is a branch-free ikj AXPY — the shape rustc autovectorizes
/// best on this workload — unrolled 8/4/2 output rows deep so each `b`
/// row is loaded once per row group. Every output element accumulates in
/// fixed ascending-`ks` order, so the result is independent of how
/// callers partition `m` (bit-identical for any thread count).
#[allow(clippy::too_many_arguments)]
fn gemm_block(
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    bcol: usize,
    out: &mut [f32],
    m: usize,
    n: usize,
    ks: &KSet<'_>,
) {
    let mut i = 0;
    // 8-row main loop: each `b` row is loaded once per eight output rows.
    // This is what makes batched decode pay — at occupancy ≥ 8 the fused
    // per-layer matmuls stream each weight panel an 8th as often as
    // occupancy-1 decode. Skip-grouping rows is exact: accumulators start
    // at +0.0 and `x + ±0.0 == x` bit-for-bit for every reachable x, so
    // computing a zero row alongside non-zero neighbours equals skipping
    // it, and per-element accumulation stays in ascending-`ks` order.
    while i + 8 <= m {
        let (o0, rest) = out[i * n..].split_at_mut(n);
        let (o1, rest) = rest.split_at_mut(n);
        let (o2, rest) = rest.split_at_mut(n);
        let (o3, rest) = rest.split_at_mut(n);
        let (o4, rest) = rest.split_at_mut(n);
        let (o5, rest) = rest.split_at_mut(n);
        let (o6, rest) = rest.split_at_mut(n);
        let o7 = &mut rest[..n];
        ks.for_each(|k| {
            let a0 = a[i * lda + k];
            let a1 = a[(i + 1) * lda + k];
            let a2 = a[(i + 2) * lda + k];
            let a3 = a[(i + 3) * lda + k];
            let a4 = a[(i + 4) * lda + k];
            let a5 = a[(i + 5) * lda + k];
            let a6 = a[(i + 6) * lda + k];
            let a7 = a[(i + 7) * lda + k];
            if a0 == 0.0
                && a1 == 0.0
                && a2 == 0.0
                && a3 == 0.0
                && a4 == 0.0
                && a5 == 0.0
                && a6 == 0.0
                && a7 == 0.0
            {
                return;
            }
            let brow = &b[k * ldb + bcol..k * ldb + bcol + n];
            let lo = o0
                .iter_mut()
                .zip(o1.iter_mut().zip(o2.iter_mut().zip(o3.iter_mut())));
            let hi = o4
                .iter_mut()
                .zip(o5.iter_mut().zip(o6.iter_mut().zip(o7.iter_mut())));
            for (((x0, (x1, (x2, x3))), (x4, (x5, (x6, x7)))), &bv) in lo.zip(hi).zip(brow) {
                *x0 = bv.mul_add(a0, *x0);
                *x1 = bv.mul_add(a1, *x1);
                *x2 = bv.mul_add(a2, *x2);
                *x3 = bv.mul_add(a3, *x3);
                *x4 = bv.mul_add(a4, *x4);
                *x5 = bv.mul_add(a5, *x5);
                *x6 = bv.mul_add(a6, *x6);
                *x7 = bv.mul_add(a7, *x7);
            }
        });
        i += 8;
    }
    // 4-row loop: each `b` row is loaded once per four output rows,
    // which matters when `b` overflows L2 (the fused QKV weight does).
    while i + 4 <= m {
        let (o0, rest) = out[i * n..].split_at_mut(n);
        let (o1, rest) = rest.split_at_mut(n);
        let (o2, rest) = rest.split_at_mut(n);
        let o3 = &mut rest[..n];
        ks.for_each(|k| {
            let a0 = a[i * lda + k];
            let a1 = a[(i + 1) * lda + k];
            let a2 = a[(i + 2) * lda + k];
            let a3 = a[(i + 3) * lda + k];
            if a0 == 0.0 && a1 == 0.0 && a2 == 0.0 && a3 == 0.0 {
                // Structural zeros (masked attention rows, sparse
                // residuals) contribute nothing; skipping them is exact.
                return;
            }
            let brow = &b[k * ldb + bcol..k * ldb + bcol + n];
            for ((((x0, x1), x2), x3), &bv) in o0
                .iter_mut()
                .zip(o1.iter_mut())
                .zip(o2.iter_mut())
                .zip(o3.iter_mut())
                .zip(brow)
            {
                *x0 = bv.mul_add(a0, *x0);
                *x1 = bv.mul_add(a1, *x1);
                *x2 = bv.mul_add(a2, *x2);
                *x3 = bv.mul_add(a3, *x3);
            }
        });
        i += 4;
    }
    while i + 2 <= m {
        let (o0, rest) = out[i * n..].split_at_mut(n);
        let o1 = &mut rest[..n];
        ks.for_each(|k| {
            let a0 = a[i * lda + k];
            let a1 = a[(i + 1) * lda + k];
            if a0 == 0.0 && a1 == 0.0 {
                return;
            }
            let brow = &b[k * ldb + bcol..k * ldb + bcol + n];
            for ((x0, x1), &bv) in o0.iter_mut().zip(o1.iter_mut()).zip(brow) {
                *x0 = bv.mul_add(a0, *x0);
                *x1 = bv.mul_add(a1, *x1);
            }
        });
        i += 2;
    }
    if i < m {
        let orow = &mut out[i * n..(i + 1) * n];
        ks.for_each(|k| {
            let av = a[i * lda + k];
            if av == 0.0 {
                return;
            }
            let brow = &b[k * ldb + bcol..k * ldb + bcol + n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o = bv.mul_add(av, *o);
            }
        });
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        self.touch();
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_expected_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_fn_and_index() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(m[(0, 0)], 0.0);
        assert_eq!(m[(1, 2)], 12.0);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_rejects_bad_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_fn(3, 3, |r, c| (r + c) as f32);
        let id = Matrix::identity(3);
        assert_eq!(a.matmul(&id), a);
        assert_eq!(id.matmul(&a), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_transposed_matches_explicit_transpose() {
        let a = Matrix::from_fn(4, 5, |r, c| (r * 5 + c) as f32 * 0.1);
        let b = Matrix::from_fn(3, 5, |r, c| ((r + 2) * (c + 1)) as f32 * 0.01);
        let bt = Matrix::from_fn(5, 3, |r, c| b[(c, r)]);
        let via_t = a.matmul(&bt);
        let direct = a.matmul_transposed(&b);
        for (x, y) in direct.as_slice().iter().zip(via_t.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    fn seeded(rows: usize, cols: usize, seed: u64) -> Matrix {
        // Tiny xorshift-style generator: deterministic, no dependency.
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        Matrix::from_fn(rows, cols, |_, _| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s % 2000) as f32 - 1000.0) / 500.0
        })
    }

    fn assert_close(a: &Matrix, b: &Matrix, tol: f32) {
        assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()));
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < tol, "{x} vs {y}");
        }
    }

    #[test]
    fn blocked_matmul_matches_reference_across_shapes() {
        // Rectangular, tile-edge, single-row, and empty shapes; the repo
        // convention is seeded loops, not proptest.
        for (seed, (m, k, n)) in [
            (1u64, (1usize, 1usize, 1usize)),
            (2, (1, 224, 64)),
            (3, (5, 7, 3)),
            (4, (17, 33, 19)),
            (5, (64, 224, 768)),
            (6, (4, 16, 16)),
            (7, (0, 8, 8)),
            (8, (8, 8, 0)),
        ] {
            let a = seeded(m, k, seed);
            let b = seeded(k, n, seed ^ 0xABCD);
            assert_close(&a.matmul(&b), &a.matmul_reference(&b), 2e-3);
        }
    }

    #[test]
    fn blocked_transposed_matches_reference_across_shapes() {
        for (seed, (m, k, n)) in [
            (11u64, (1usize, 1usize, 1usize)),
            (12, (3, 64, 9)),
            (13, (17, 65, 21)),
            (14, (32, 256, 48)),
            (15, (0, 8, 4)),
        ] {
            let a = seeded(m, k, seed);
            let b = seeded(n, k, seed ^ 0x1234);
            assert_close(
                &a.matmul_transposed(&b),
                &a.matmul_transposed_reference(&b),
                2e-3,
            );
        }
    }

    #[test]
    fn sparse_rhs_path_matches_dense() {
        // A rhs with only a few non-zero rows takes the probed sparse
        // path; zeroing different rows after a clone resets the probe.
        let a = seeded(9, 32, 21);
        let mut b = seeded(32, 12, 22);
        for r in 0..32 {
            if r % 4 != 0 {
                b.row_mut(r).fill(0.0);
            }
        }
        assert_close(&a.matmul(&b), &a.matmul_reference(&b), 1e-3);
        // Mutating after a probe must invalidate it (correctness, not
        // just performance: a stale skip list would drop this row).
        let _ = a.matmul(&b);
        b.row_mut(1).fill(2.5);
        assert_close(&a.matmul(&b), &a.matmul_reference(&b), 1e-3);
    }

    #[test]
    fn col_block_kernels_match_copied_blocks() {
        let q = seeded(7, 96, 31);
        let kmat = seeded(13, 96, 32);
        let (lo, hi) = (32, 64);
        let qh = q.col_block(lo, hi);
        let kh = kmat.col_block(lo, hi);
        let mut scores = Matrix::zeros(0, 0);
        q.matmul_transposed_block_into(&kmat, lo, hi, &mut scores);
        assert_close(&scores, &qh.matmul_transposed(&kh), 1e-4);

        let p = seeded(7, 13, 33);
        let mut ctx = Matrix::zeros(0, 0);
        p.matmul_cols_into(&kmat, lo, hi, &mut ctx);
        assert_close(&ctx, &p.matmul(&kh), 1e-4);
    }

    #[test]
    fn parallel_matmul_bit_identical_across_thread_counts() {
        // Rows over the parallel threshold: row chunks are MR-aligned and
        // each row's accumulation order is fixed, so every pool size must
        // produce the same bytes.
        let _guard = crate::pool::GLOBAL_POOL_TEST_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let a = seeded(130, 96, 91);
        let b = seeded(96, 48, 92);
        crate::pool::set_threads(1);
        let baseline = a.matmul(&b);
        for threads in 2..=4 {
            crate::pool::set_threads(threads);
            let got = a.matmul(&b);
            assert_eq!(got, baseline, "thread count {threads} changed bits");
        }
        crate::pool::set_threads(1);
        assert_close(&baseline, &a.matmul_reference(&b), 2e-3);
    }

    #[test]
    fn matmul_into_reuses_buffer() {
        let a = seeded(8, 8, 41);
        let b = seeded(8, 8, 42);
        let mut out = Matrix::zeros(64, 64); // larger: capacity reused
        let cap = out.data.capacity();
        a.matmul_into(&b, &mut out);
        assert_eq!(out.rows(), 8);
        assert_eq!(out.data.capacity(), cap);
        assert_close(&out, &a.matmul_reference(&b), 1e-3);
    }

    #[test]
    fn extend_rows_appends_in_place() {
        let mut m = Matrix::zeros(0, 3);
        m.reserve_rows(4);
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        m.extend_rows(&a);
        m.extend_from_rows(&a, 1, 2);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.row(2), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn gather_then_scatter_roundtrips() {
        let src = Matrix::from_fn(5, 3, |r, c| (r * 3 + c) as f32);
        let idx = [4usize, 0, 2];
        let g = src.gather_rows(&idx);
        assert_eq!(g.row(0), src.row(4));
        assert_eq!(g.row(1), src.row(0));
        let mut dst = Matrix::zeros(5, 3);
        dst.scatter_rows(&idx, &g);
        assert_eq!(dst.row(4), src.row(4));
        assert_eq!(dst.row(0), src.row(0));
        assert_eq!(dst.row(2), src.row(2));
        assert!(dst.row(1).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn vcat_stacks_rows() {
        let a = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let b = Matrix::from_vec(2, 2, vec![3.0, 4.0, 5.0, 6.0]);
        let c = Matrix::vcat(&[&a, &b]);
        assert_eq!(c.rows(), 3);
        assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn vcat_from_iterates_without_collecting() {
        let parts = [
            Matrix::from_vec(1, 2, vec![1.0, 2.0]),
            Matrix::from_vec(2, 2, vec![3.0, 4.0, 5.0, 6.0]),
        ];
        let c = Matrix::vcat_from(parts.iter());
        assert_eq!(c.rows(), 3);
        assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn slice_rows_extracts_range() {
        let a = Matrix::from_fn(4, 2, |r, _| r as f32);
        let s = a.slice_rows(1, 3);
        assert_eq!(s.rows(), 2);
        assert_eq!(s.row(0)[0], 1.0);
        assert_eq!(s.row(1)[0], 2.0);
    }

    #[test]
    fn frobenius_distance_of_equal_is_zero() {
        let a = Matrix::from_fn(3, 3, |r, c| (r * c) as f32);
        assert_eq!(a.frobenius_distance(&a), 0.0);
    }

    #[test]
    fn add_assign_and_scale() {
        let mut a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![0.5, 0.5, 0.5]);
        a.add_assign(&b);
        a.scale(2.0);
        assert_eq!(a.as_slice(), &[3.0, 5.0, 7.0]);
    }
}
