//! Regenerates fig10 (see DESIGN.md §7 and EXPERIMENTS.md).
fn main() {
    cb_bench::experiments::fig10::run();
}
