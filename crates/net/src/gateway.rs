//! The coordinator side of the control plane: the [`Gateway`] owns chunk
//! placement, request routing, spill, and failover over any
//! [`Transport`] — the policy brain that `cb-serving`'s in-process
//! `ClusterService` now fronts.
//!
//! **Placement and routing** generalize the cluster router: every chunk
//! has a stable home worker under rendezvous hashing (SplitMix64 scores;
//! health never moves homes), and a request goes to the worker home to
//! the most of its chunks, ties broken by an order-independent hash of
//! the whole set.
//!
//! **Admission is optimistic and asynchronous.** `Submit` frames carry
//! `blocking: false` first; a worker whose queue is full answers
//! `Rejected` with a fresh probe, and the gateway *respills* the pending
//! request — first to the least-loaded other healthy worker, then (if
//! every queue is full) back to the best healthy worker with
//! `blocking: true`, which cannot be refused.
//!
//! **Failover is edge-triggered.** A worker is *effectively healthy* when
//! the operator mark is up, the connection lives, its last probe says the
//! scheduler can make progress, and a heartbeat arrived within
//! [`GatewayConfig::heartbeat_timeout`]. Every health evaluation runs
//! through one idempotent transition detector: [`ClusterStats::failovers`]
//! counts **down-transitions exactly once** — a worker that recovers
//! mid-probe and fails again counts twice, but re-observing a down worker
//! (from routing, heartbeat sweeps, and operator marks concurrently)
//! never double-counts.
//!
//! The state machine per worker:
//!
//! ```text
//!            heartbeat fresh ∧ probe healthy ∧ marked ∧ connected
//!          ┌─────────────────────────────────────────────────────┐
//!          ▼                                                     │
//!        UP ──(silence > timeout | probe unhealthy | marked down │
//!          │        | disconnect)──▶ DOWN ──(condition clears)───┘
//!          │  ↑ counted once per down edge (`failovers`)
//! ```
//!
//! **Re-attach adopts slots.** Workers carry a stable identity
//! (`id` + `incarnation`, see [`Message::HelloWorker`]): a worker that
//! reconnects under a known id with a higher incarnation *adopts* its
//! old slot — same index, so every chunk home is untouched; health
//! history and admission counters carry over — and the roster never
//! grows ([`ClusterStats::adoptions`] counts each adoption). A hello
//! whose incarnation does not exceed the slot's current one is rejected,
//! and frames still arriving from a superseded connection are dropped.
//!
//! **Mid-stream retry is client-invisible.** Every routed request is
//! journaled ([`Pending`]: the request body plus a
//! [`ReplayFilter`] recording the delivered event prefix). When the
//! serving worker dies mid-stream — or fails the request with a
//! [retryable](ErrorCode::retryable) code — the gateway re-submits to
//! the next-best healthy worker under the capped exponential backoff of
//! [`RetryPolicy`], rewinds the filter, and suppresses the replayed
//! prefix; determinism makes replayed tokens bit-identical (asserted),
//! so the client's `collect()` sees one seamless stream. Journal entries
//! retire exactly once, on the first terminal event actually forwarded.
//!
//! **A warm standby mirrors everything it needs to take over.** A peer
//! opening with `HelloStandby` receives a snapshot and then a live feed
//! of the pending journal, the chunk registry (tokens, so registrations
//! survive), and the worker roster via the `Replicate*` messages; the
//! periodic roster re-send doubles as the primary's heartbeat. See
//! [`crate::standby::Standby`] for the takeover half.

use crate::message::{Message, WireEvent, WireFailure, WireRequest};
use crate::retry::RetryPolicy;
use crate::transport::{NetError, Transport};
use cb_core::engine::{EngineError, ErrorCode, Request, Response};
use cb_core::scheduler::{ServiceProbe, ServiceStats};
use cb_core::stream::{Event, ReplayFilter, ResponseStream};
use cb_kv::chunk::hash_tokens;
use cb_kv::ChunkId;
use cb_obs::metrics::{MetricsSnapshot, Registry};
use cb_obs::trace::{alloc_span_id, record_span_with_id};
use cb_obs::{cb_debug, cb_warn};
use cb_tokenizer::TokenId;
use crossbeam::channel::{self, Sender};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Errors surfaced by cluster submission.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClusterError {
    /// Every worker is unhealthy (no scheduler workers, shut down, marked
    /// down, heartbeat-silent, or disconnected); the request was not
    /// accepted anywhere.
    NoHealthyReplica,
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::NoHealthyReplica => {
                write!(f, "no healthy worker available to serve the request")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

/// Lifetime counters of a gateway (see [`Gateway::stats`]).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ClusterStats {
    /// Requests admitted per worker (router submissions only).
    pub admissions: Vec<u64>,
    /// Requests that could not be admitted at their routed worker (queue
    /// full) and were respilled to the least-loaded worker instead.
    pub spills: u64,
    /// Worker health **down-transitions**, counted once per edge — the
    /// idempotent failover counter (see module docs' state machine).
    pub failovers: u64,
    /// Requests routed away from their locality-preferred worker because
    /// it was unhealthy at submit time.
    pub reroutes: u64,
    /// Requests served by their locality-preferred worker.
    pub local_requests: u64,
    /// Requests admitted in total.
    pub total_requests: u64,
    /// Chunk references across all admitted requests.
    pub chunk_lookups: u64,
    /// Chunk references served by the chunk's home worker — the cache the
    /// rendezvous placement keeps warm.
    pub chunk_local: u64,
    /// Requests rejected because no worker was healthy.
    pub rejections: u64,
    /// Mid-stream retries: requests transparently re-submitted after
    /// their worker died or failed them with a retryable code. The
    /// client saw one seamless stream.
    pub retries: u64,
    /// Slot adoptions: workers that re-attached under a known identity
    /// and reclaimed their old slot instead of growing the roster.
    pub adoptions: u64,
    /// Gateway takeovers survived: how many times this gateway's state
    /// was inherited from a failed primary by a warm standby (0 on a
    /// gateway that started as the primary).
    pub takeovers: u64,
}

impl ClusterStats {
    /// Fraction of chunk references served at the chunk's home worker —
    /// the router's locality hit rate.
    pub fn locality_hit_rate(&self) -> f64 {
        if self.chunk_lookups == 0 {
            0.0
        } else {
            self.chunk_local as f64 / self.chunk_lookups as f64
        }
    }

    /// Fraction of requests served by their locality-preferred worker.
    pub fn request_locality_rate(&self) -> f64 {
        if self.total_requests == 0 {
            0.0
        } else {
            self.local_requests as f64 / self.total_requests as f64
        }
    }
}

#[derive(Debug, Default)]
struct AtomicClusterStats {
    spills: AtomicU64,
    failovers: AtomicU64,
    reroutes: AtomicU64,
    local_requests: AtomicU64,
    total_requests: AtomicU64,
    chunk_lookups: AtomicU64,
    chunk_local: AtomicU64,
    rejections: AtomicU64,
    retries: AtomicU64,
    adoptions: AtomicU64,
    takeovers: AtomicU64,
}

/// Gateway tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct GatewayConfig {
    /// Silence longer than this declares a worker down (until its next
    /// heartbeat). Keep it several heartbeat intervals wide. The same
    /// window governs when a standby declares the primary dead.
    pub heartbeat_timeout: Duration,
    /// How long [`Gateway::attach`] waits for the `HelloWorker` frame.
    pub attach_timeout: Duration,
    /// RPC timeout plus the mid-stream retry budget and backoff curve
    /// (see [`RetryPolicy`] for where each knob applies).
    pub retry: RetryPolicy,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        Self {
            heartbeat_timeout: Duration::from_secs(5),
            attach_timeout: Duration::from_secs(10),
            retry: RetryPolicy::default(),
        }
    }
}

impl GatewayConfig {
    /// Sets the heartbeat-silence window.
    pub fn heartbeat_timeout(mut self, d: Duration) -> Self {
        self.heartbeat_timeout = d;
        self
    }

    /// Sets the RPC timeout / retry / backoff policy.
    pub fn retry(mut self, p: RetryPolicy) -> Self {
        self.retry = p;
        self
    }

    /// The demux poll period: frequent enough to sweep heartbeat expiry
    /// well inside the timeout window.
    fn tick(&self) -> Duration {
        (self.heartbeat_timeout / 4).clamp(Duration::from_millis(5), Duration::from_millis(250))
    }
}

/// SplitMix64 finalizer: a strong, cheap 64-bit mix for rendezvous scores.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

const REPLICA_SALT: u64 = 0xA24B_AED4_963E_E407;
const TRACE_SALT: u64 = 0xC2B2_AE3D_27D4_EB4F;

#[derive(Debug)]
struct SlotState {
    probe: ServiceProbe,
    stats: ServiceStats,
    last_heartbeat: Instant,
    /// Operator mark (fault injection, maintenance).
    marked_up: bool,
    /// False once the connection died.
    connected: bool,
    /// Last *observed* effective health — the edge detector's memory.
    was_healthy: bool,
}

#[derive(Debug)]
struct WorkerSlot {
    index: usize,
    /// Stable worker identity (the adoption key across reconnects).
    id: u64,
    /// Current connection generation; hellos must exceed it to adopt,
    /// frames from older incarnations are dropped.
    incarnation: AtomicU64,
    /// The live connection; `None` on a resumed roster slot whose worker
    /// has not re-attached yet.
    conn: RwLock<Option<Arc<dyn Transport>>>,
    admissions: AtomicU64,
    state: Mutex<SlotState>,
}

impl WorkerSlot {
    fn conn(&self) -> Option<Arc<dyn Transport>> {
        self.conn.read().unwrap().clone()
    }

    fn send(&self, msg: &Message) -> Result<(), NetError> {
        match self.conn() {
            Some(c) => c.send(msg),
            None => Err(NetError::Closed),
        }
    }
}

/// One in-flight routed request — the journal entry a retry replays
/// from.
struct Pending {
    request: Request,
    tx: Sender<Event>,
    worker: usize,
    preferred: usize,
    /// Rejections seen so far (drives the respill escalation).
    attempts: u32,
    /// True once its admission was recorded (first `Queued` event).
    counted: bool,
    /// Delivered-prefix record: suppresses replayed events on retry and
    /// asserts replayed tokens are bit-identical.
    filter: ReplayFilter,
    /// Mid-stream retries consumed (bounded by
    /// [`RetryPolicy::max_retries`]).
    retries: u32,
    /// Observability: the request's nonzero trace id (client-supplied, or
    /// derived from the journal id), the still-open root `request` span
    /// covering place → terminal, and the currently open serve-attempt
    /// span (`serve#k` / `retry#k`) the serving worker parents under.
    trace: u64,
    root_span: u64,
    root_parent: u64,
    root_start_ns: u64,
    attempt_span: u64,
    attempt_name: String,
    attempt_start_ns: u64,
}

impl Pending {
    /// Closes the open serve-attempt span and opens the next one (a
    /// respill or retry re-placement), returning the new span id to put
    /// in the `Submit` frame. Each attempt is a sibling child of the
    /// root `request` span — a retry is a new interval, never a rewind.
    fn next_attempt(&mut self, name: String) -> u64 {
        let now = cb_obs::now_nanos();
        record_span_with_id(
            self.trace,
            self.attempt_span,
            self.root_span,
            std::mem::replace(&mut self.attempt_name, name),
            self.attempt_start_ns,
            now,
        );
        self.attempt_span = alloc_span_id();
        self.attempt_start_ns = now;
        self.attempt_span
    }

    /// Closes both open spans — called exactly once, when the journal
    /// entry retires (terminal event forwarded, or a structured failure).
    fn close_trace(&self) {
        let now = cb_obs::now_nanos();
        record_span_with_id(
            self.trace,
            self.attempt_span,
            self.root_span,
            self.attempt_name.clone(),
            self.attempt_start_ns,
            now,
        );
        record_span_with_id(
            self.trace,
            self.root_span,
            self.root_parent,
            "request",
            self.root_start_ns,
            now,
        );
    }
}

/// What [`Gateway::accept`] found on a new connection.
#[derive(Debug)]
pub enum Accepted {
    /// A worker announced itself; its index is returned.
    Worker(usize),
    /// A client session started (served on a background thread).
    Client,
    /// A warm-standby gateway subscribed to the replication feed.
    Standby,
}

struct GwInner {
    cfg: GatewayConfig,
    workers: RwLock<Vec<Arc<WorkerSlot>>>,
    pending: Mutex<HashMap<u64, Pending>>,
    rpcs: Mutex<HashMap<u64, Sender<Message>>>,
    /// Registered chunk tokens by content-addressed id — the registry a
    /// standby mirrors so no registration is lost across a takeover.
    chunks: Mutex<HashMap<u64, Vec<TokenId>>>,
    /// Live standby subscriber connections (dead ones are dropped on the
    /// next mirror write).
    standbys: Mutex<Vec<Arc<dyn Transport>>>,
    next_id: AtomicU64,
    shutdown: AtomicBool,
    stats: AtomicClusterStats,
    /// Counter values already pushed into the global metrics registry —
    /// the next [`GwInner::publish_metrics`] pushes only the delta, so
    /// repeated scrapes are idempotent.
    published: Mutex<ClusterStats>,
}

impl GwInner {
    // --- health -----------------------------------------------------------

    /// Evaluates a slot's effective health and runs the idempotent edge
    /// detector: a true→false observation counts one failover; repeated
    /// observations of the same state count nothing.
    fn refresh_slot(&self, slot: &WorkerSlot) -> bool {
        let mut st = slot.state.lock().unwrap();
        let eff = st.marked_up
            && st.connected
            && st.probe.healthy()
            && st.last_heartbeat.elapsed() <= self.cfg.heartbeat_timeout;
        if st.was_healthy && !eff {
            self.stats.failovers.fetch_add(1, Ordering::Relaxed);
        }
        st.was_healthy = eff;
        eff
    }

    fn slots(&self) -> Vec<Arc<WorkerSlot>> {
        self.workers.read().unwrap().clone()
    }

    fn n_workers(&self) -> usize {
        self.workers.read().unwrap().len()
    }

    // --- standby mirroring ------------------------------------------------

    /// Sends one frame to every live standby, dropping dead subscribers.
    /// No-op (and no lock contention on the hot path) while no standby is
    /// attached.
    fn mirror(&self, msg: &Message) {
        let mut standbys = self.standbys.lock().unwrap();
        if standbys.is_empty() {
            return;
        }
        standbys.retain(|c| c.send(msg).is_ok());
    }

    fn roster_msg(&self) -> Message {
        let slots = self.slots();
        Message::ReplicateRoster {
            ids: slots.iter().map(|s| s.id).collect(),
            incarnations: slots
                .iter()
                .map(|s| s.incarnation.load(Ordering::Relaxed))
                .collect(),
        }
    }

    // --- placement --------------------------------------------------------

    fn home_of(&self, id: ChunkId) -> usize {
        let n = self.n_workers();
        (0..n)
            .max_by_key(|&r| splitmix64(id.0 ^ (r as u64).wrapping_mul(REPLICA_SALT)))
            .expect("at least one worker")
    }

    /// One-scan routing decision: `(target, preferred, rerouted)` —
    /// identical ranking to the original in-process cluster router.
    fn decide(&self, chunk_ids: &[ChunkId]) -> (Option<usize>, usize, bool) {
        let slots = self.slots();
        let n = slots.len();
        let mut votes = vec![0usize; n];
        let mut set_hash = 0u64;
        for &c in chunk_ids {
            votes[self.home_of(c)] += 1;
            set_hash ^= splitmix64(c.0);
        }
        let rank = |r: usize| {
            (
                votes[r],
                splitmix64(set_hash ^ (r as u64).wrapping_mul(REPLICA_SALT)),
            )
        };
        let preferred = (0..n)
            .max_by_key(|&r| rank(r))
            .expect("at least one worker");
        if self.refresh_slot(&slots[preferred]) {
            return (Some(preferred), preferred, false);
        }
        let target = (0..n)
            .filter(|&r| self.refresh_slot(&slots[r]))
            .max_by_key(|&r| rank(r));
        (target, preferred, target.is_some())
    }

    fn least_loaded(&self, exclude: Option<usize>) -> Option<usize> {
        let slots = self.slots();
        (0..slots.len())
            .filter(|&r| Some(r) != exclude && self.refresh_slot(&slots[r]))
            .min_by_key(|&r| slots[r].state.lock().unwrap().probe.load())
    }

    // --- accounting -------------------------------------------------------

    fn record_admission(&self, worker: usize, preferred: usize, chunk_ids: &[ChunkId]) {
        self.slots()[worker]
            .admissions
            .fetch_add(1, Ordering::Relaxed);
        self.stats.total_requests.fetch_add(1, Ordering::Relaxed);
        if worker == preferred {
            self.stats.local_requests.fetch_add(1, Ordering::Relaxed);
        }
        let local = chunk_ids
            .iter()
            .filter(|&&c| self.home_of(c) == worker)
            .count();
        self.stats
            .chunk_lookups
            .fetch_add(chunk_ids.len() as u64, Ordering::Relaxed);
        self.stats
            .chunk_local
            .fetch_add(local as u64, Ordering::Relaxed);
    }

    fn stats_snapshot(&self) -> ClusterStats {
        let s = &self.stats;
        ClusterStats {
            admissions: self
                .slots()
                .iter()
                .map(|w| w.admissions.load(Ordering::Relaxed))
                .collect(),
            spills: s.spills.load(Ordering::Relaxed),
            failovers: s.failovers.load(Ordering::Relaxed),
            reroutes: s.reroutes.load(Ordering::Relaxed),
            local_requests: s.local_requests.load(Ordering::Relaxed),
            total_requests: s.total_requests.load(Ordering::Relaxed),
            chunk_lookups: s.chunk_lookups.load(Ordering::Relaxed),
            chunk_local: s.chunk_local.load(Ordering::Relaxed),
            rejections: s.rejections.load(Ordering::Relaxed),
            retries: s.retries.load(Ordering::Relaxed),
            adoptions: s.adoptions.load(Ordering::Relaxed),
            takeovers: s.takeovers.load(Ordering::Relaxed),
        }
    }

    // --- metrics ----------------------------------------------------------

    /// Flushes the cluster counters into the process-global registry as
    /// `cb_gateway_*_total` series, publishing only the delta since the
    /// last flush (so repeated scrapes never double-count), and stamps
    /// each worker slot's gateway-side health view into labeled gauges.
    fn publish_metrics(&self) {
        let current = self.stats_snapshot();
        let prev = {
            let mut published = self.published.lock().unwrap();
            std::mem::replace(&mut *published, current.clone())
        };
        let reg = Registry::global();
        for (name, now, then) in [
            ("cb_gateway_spills_total", current.spills, prev.spills),
            (
                "cb_gateway_failovers_total",
                current.failovers,
                prev.failovers,
            ),
            ("cb_gateway_reroutes_total", current.reroutes, prev.reroutes),
            (
                "cb_gateway_local_requests_total",
                current.local_requests,
                prev.local_requests,
            ),
            (
                "cb_gateway_requests_total",
                current.total_requests,
                prev.total_requests,
            ),
            (
                "cb_gateway_chunk_lookups_total",
                current.chunk_lookups,
                prev.chunk_lookups,
            ),
            (
                "cb_gateway_chunk_local_total",
                current.chunk_local,
                prev.chunk_local,
            ),
            (
                "cb_gateway_rejections_total",
                current.rejections,
                prev.rejections,
            ),
            ("cb_gateway_retries_total", current.retries, prev.retries),
            (
                "cb_gateway_adoptions_total",
                current.adoptions,
                prev.adoptions,
            ),
            (
                "cb_gateway_takeovers_total",
                current.takeovers,
                prev.takeovers,
            ),
        ] {
            let delta = now.saturating_sub(then);
            if delta > 0 {
                reg.counter(name).add(delta);
            }
        }
        for slot in self.slots() {
            let healthy = self.refresh_slot(&slot);
            let (queue_depth, inflight) = {
                let st = slot.state.lock().unwrap();
                (st.probe.queue_depth, st.probe.inflight)
            };
            let idx = slot.index;
            reg.gauge(&format!("cb_gateway_worker_healthy{{worker=\"{idx}\"}}"))
                .set(healthy as u64 as f64);
            reg.gauge(&format!(
                "cb_gateway_worker_queue_depth{{worker=\"{idx}\"}}"
            ))
            .set(queue_depth as f64);
            reg.gauge(&format!("cb_gateway_worker_inflight{{worker=\"{idx}\"}}"))
                .set(inflight as f64);
        }
    }

    /// Cluster-wide scrape: flushes gateway counters, fans a `Metrics`
    /// RPC to every connected worker, and merges the replies with this
    /// process's own registry. The merge is instance-deduplicated, so a
    /// loopback cluster (gateway and workers sharing one process-global
    /// registry) is counted once while TCP workers sum correctly.
    fn scrape(&self) -> MetricsSnapshot {
        self.publish_metrics();
        let mut waits = Vec::new();
        for slot in self.slots() {
            let rpc = self.next_id.fetch_add(1, Ordering::Relaxed);
            let (tx, rx) = channel::unbounded();
            self.rpcs.lock().unwrap().insert(rpc, tx);
            if slot.send(&Message::Metrics { rpc }).is_err() {
                // Disconnected worker: scrape whoever remains.
                self.rpcs.lock().unwrap().remove(&rpc);
                continue;
            }
            waits.push((rpc, rx));
        }
        let mut replies = Vec::with_capacity(waits.len());
        for (rpc, rx) in waits {
            match rx.recv_timeout(self.cfg.retry.rpc_timeout) {
                Ok(Message::MetricsReply { snapshot, .. }) => {
                    match MetricsSnapshot::decode(&snapshot) {
                        Ok(snap) => replies.push(snap),
                        Err(e) => cb_warn!("gateway", "undecodable metrics reply: {e}"),
                    }
                }
                _ => {
                    self.rpcs.lock().unwrap().remove(&rpc);
                }
            }
        }
        // Snapshot our own registry only after every worker replied: a
        // loopback worker shares it, and its reply is dedup-skipped — its
        // scrape-time flushes must already be visible here.
        let mut merged = Registry::global().snapshot();
        for snap in replies {
            merged.merge(&snap);
        }
        merged
    }

    // --- demux ------------------------------------------------------------

    /// Serves one worker connection of one incarnation. A re-attach bumps
    /// the slot's incarnation and starts a fresh demux thread; this loop
    /// then observes itself superseded and exits, rejecting any frame
    /// still arriving on the old connection.
    fn demux_loop(
        self: Arc<Self>,
        slot: Arc<WorkerSlot>,
        conn: Arc<dyn Transport>,
        incarnation: u64,
    ) {
        let tick = self.cfg.tick();
        loop {
            if self.shutdown.load(Ordering::Relaxed) {
                return;
            }
            let current = slot.incarnation.load(Ordering::Relaxed);
            if current != incarnation {
                return; // Superseded by a re-attach: drop this connection.
            }
            match conn.recv_timeout(tick) {
                Ok(msg) => {
                    // Re-check after the (possibly long) receive: a frame
                    // from a superseded incarnation must not be applied.
                    if slot.incarnation.load(Ordering::Relaxed) != incarnation {
                        return;
                    }
                    self.handle_worker_msg(&slot, msg);
                }
                Err(NetError::Timeout) => {
                    // The periodic sweep: expire heartbeat silence.
                    self.refresh_slot(&slot);
                }
                Err(_) => {
                    self.on_worker_disconnect(&slot, incarnation);
                    return;
                }
            }
        }
    }

    fn handle_worker_msg(self: &Arc<Self>, slot: &Arc<WorkerSlot>, msg: Message) {
        match msg {
            Message::Heartbeat { probe, stats } => {
                {
                    let mut st = slot.state.lock().unwrap();
                    st.probe = probe;
                    st.stats = stats;
                    st.last_heartbeat = Instant::now();
                }
                self.refresh_slot(slot);
            }
            Message::Rejected { id, probe } => {
                {
                    let mut st = slot.state.lock().unwrap();
                    st.probe = probe;
                }
                self.respill(id, Some(slot.index));
            }
            Message::Ev { id, event, .. } => self.handle_event(slot, id, event.into_event()),
            Message::RegisterReply { rpc, .. }
            | Message::StatusReply { rpc, .. }
            | Message::MetricsReply { rpc, .. }
            | Message::DrainReply { rpc } => {
                if let Some(tx) = self.rpcs.lock().unwrap().remove(&rpc) {
                    let _ = tx.send(msg);
                }
            }
            _ => {} // Frames the gateway never consumes from workers.
        }
    }

    /// Applies one stream event from a worker to its journal entry: runs
    /// the replay filter (suppressing the replayed prefix after a
    /// retry), intercepts retryable terminal failures while retry budget
    /// remains, forwards everything else to the client, and retires the
    /// entry on the first terminal event actually forwarded — exactly
    /// once.
    fn handle_event(self: &Arc<Self>, slot: &Arc<WorkerSlot>, id: u64, ev: Event) {
        // A terminal failure with a retryable code consumes a retry
        // instead of reaching the client, while budget lasts.
        if let Event::Failed(err) = &ev {
            if err.code().retryable() && self.try_retry(id, Some(slot.index)) {
                return;
            }
        }
        let mut pending = self.pending.lock().unwrap();
        let Some(p) = pending.get_mut(&id) else {
            return; // Late event for a resolved/abandoned request.
        };
        if matches!(ev, Event::Queued) && !p.counted {
            p.counted = true;
            let (worker, preferred, chunk_ids) =
                (p.worker, p.preferred, p.request.chunk_ids.clone());
            self.record_admission(worker, preferred, &chunk_ids);
        }
        let forward = match p.filter.admit(&ev) {
            Ok(forward) => forward,
            Err(m) => {
                // Determinism violated: the replay diverged from what the
                // client already saw. Fail the request rather than splice
                // two different answers together — and assert in debug
                // builds, because same-seed replicas make this impossible.
                let _ = p.tx.send(Event::Failed(EngineError::Remote {
                    code: ErrorCode::Corrupt,
                    message: format!("mid-stream retry replay diverged: {m}"),
                }));
                if let Some(p) = pending.remove(&id) {
                    p.close_trace();
                }
                drop(pending);
                self.mirror(&Message::ReplicateRetire { id });
                debug_assert!(false, "mid-stream retry replay diverged: {m}");
                return;
            }
        };
        if !forward {
            return; // Replayed prefix: suppressed, bit-identity verified.
        }
        let terminal = ev.is_terminal();
        let progress = match ev {
            Event::Token(_) => Some(p.filter.tokens_delivered() as u32),
            _ => None,
        };
        let _ = p.tx.send(ev); // Receiver may be gone; fine.
        if terminal {
            if let Some(p) = pending.remove(&id) {
                p.close_trace();
            }
        }
        drop(pending);
        if terminal {
            self.mirror(&Message::ReplicateRetire { id });
        } else if let Some(delivered_tokens) = progress {
            self.mirror(&Message::ReplicateProgress {
                id,
                delivered_tokens,
            });
        }
    }

    /// Consumes one retry for journal entry `id` if budget remains:
    /// rewinds the replay filter, waits the policy backoff off-thread,
    /// then re-submits to the next-best healthy worker. Returns `false`
    /// (without touching the entry) when the id is unknown or the budget
    /// is exhausted — the caller decides whether to surface the failure.
    fn try_retry(self: &Arc<Self>, id: u64, exclude: Option<usize>) -> bool {
        let delay = {
            let mut pending = self.pending.lock().unwrap();
            let Some(p) = pending.get_mut(&id) else {
                return false;
            };
            if p.retries >= self.cfg.retry.max_retries {
                return false;
            }
            p.retries += 1;
            p.filter.rewind();
            self.stats.retries.fetch_add(1, Ordering::Relaxed);
            self.cfg.retry.backoff(p.retries)
        };
        let inner = Arc::clone(self);
        let spawned = std::thread::Builder::new()
            .name(format!("cb-net-gw-retry-{id}"))
            .spawn(move || {
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
                inner.resubmit(id, exclude);
            });
        if spawned.is_err() {
            self.resubmit(id, exclude); // No thread: retry inline.
        }
        true
    }

    /// The body of a retry after its backoff: picks the next-best
    /// healthy worker (excluding the failed one when another exists) and
    /// re-submits with `blocking: true` so the placement cannot be
    /// refused. No healthy worker — or another death during the send
    /// with the budget spent — fails the entry with a structured error.
    fn resubmit(self: &Arc<Self>, id: u64, exclude: Option<usize>) {
        let target = self
            .least_loaded(exclude)
            .or_else(|| self.least_loaded(None));
        let Some(target) = target else {
            self.fail_pending(id, "no healthy worker remains to retry the request");
            return;
        };
        let wire = {
            let mut pending = self.pending.lock().unwrap();
            let Some(p) = pending.get_mut(&id) else {
                return; // Resolved while the backoff elapsed.
            };
            p.worker = target;
            let span = p.next_attempt(format!("retry#{}", p.retries));
            (
                WireRequest::from_request(&p.request),
                p.filter.tokens_delivered() as u32,
                p.trace,
                span,
            )
        };
        let (request, delivered_tokens, trace, span) = wire;
        cb_debug!("gateway", "retry {id} -> worker {target} trace={trace:#x}");
        self.mirror(&Message::ReplicatePending {
            id,
            request: request.clone(),
            delivered_tokens,
        });
        let sent = self.slots()[target].send(&Message::Submit {
            id,
            trace,
            span,
            blocking: true,
            request,
        });
        if sent.is_err() && !self.try_retry(id, Some(target)) {
            self.fail_pending(
                id,
                &format!("worker {target} died while the request was being retried"),
            );
        }
    }

    /// Retires journal entry `id` with a structured failure (exactly
    /// once; a no-op if the entry already resolved).
    fn fail_pending(&self, id: u64, why: &str) {
        let removed = self.pending.lock().unwrap().remove(&id);
        if let Some(p) = removed {
            cb_warn!("gateway", "request {id} failed: {why}");
            p.close_trace();
            let _ = p.tx.send(Event::Failed(EngineError::Remote {
                code: ErrorCode::NoHealthyWorker,
                message: why.into(),
            }));
            self.mirror(&Message::ReplicateRetire { id });
        }
    }

    /// Re-places a pending request after its worker rejected it (or
    /// died). Escalation: first rejection spills to the least-loaded
    /// *other* healthy worker non-blocking; anything further goes to the
    /// best healthy worker with `blocking: true` (cannot be refused). No
    /// healthy worker at all fails the request with a structured error —
    /// never a hang.
    fn respill(&self, id: u64, reject_origin: Option<usize>) {
        let mut pending = self.pending.lock().unwrap();
        let Some(p) = pending.get_mut(&id) else {
            return;
        };
        p.attempts += 1;
        let placement = if p.attempts == 1 {
            match self.least_loaded(reject_origin) {
                Some(t) => {
                    self.stats.spills.fetch_add(1, Ordering::Relaxed);
                    Some((t, false))
                }
                // Nowhere else to go: block at the best healthy worker
                // (usually the origin itself) — uncounted, matching the
                // in-process router's "nowhere to spill" semantics.
                None => self.least_loaded(None).map(|t| (t, true)),
            }
        } else {
            self.least_loaded(None).map(|t| (t, true))
        };
        let Some((target, blocking)) = placement else {
            drop(pending);
            self.fail_pending(id, "request rejected and no healthy worker remains");
            return;
        };
        p.worker = target;
        let request = WireRequest::from_request(&p.request);
        let delivered_tokens = p.filter.tokens_delivered() as u32;
        let trace = p.trace;
        let span = p.next_attempt(format!("serve#{}", p.attempts));
        drop(pending);
        cb_debug!(
            "gateway",
            "respill {id} -> worker {target} blocking={blocking}"
        );
        self.mirror(&Message::ReplicatePending {
            id,
            request: request.clone(),
            delivered_tokens,
        });
        let sent = self.slots()[target].send(&Message::Submit {
            id,
            trace,
            span,
            blocking,
            request,
        });
        if sent.is_err() {
            // Raced a second failure: give up with the structured error.
            self.fail_pending(
                id,
                &format!("worker {target} died while the request respilled"),
            );
        }
    }

    /// Reacts to a connection death — but only if `incarnation` is still
    /// the slot's current one. A superseded connection dying after its
    /// worker already re-attached must not mark the adopted slot down.
    fn on_worker_disconnect(self: &Arc<Self>, slot: &WorkerSlot, incarnation: u64) {
        if self.shutdown.load(Ordering::Relaxed) {
            return; // Normal teardown, not a fault.
        }
        if slot.incarnation.load(Ordering::Relaxed) != incarnation {
            return; // A newer incarnation already adopted the slot.
        }
        {
            let mut st = slot.state.lock().unwrap();
            st.connected = false;
        }
        self.refresh_slot(slot); // Counts the down edge.
                                 // Strand no request on the dead worker: retry everything it
                                 // still owed (the replay filter suppresses whatever prefix the
                                 // client already saw), failing only entries whose retry budget
                                 // is spent.
        let stranded: Vec<u64> = {
            let pending = self.pending.lock().unwrap();
            pending
                .iter()
                .filter(|(_, p)| p.worker == slot.index)
                .map(|(&id, _)| id)
                .collect()
        };
        for id in stranded {
            if !self.try_retry(id, Some(slot.index)) {
                self.fail_pending(
                    id,
                    &format!(
                        "worker {} died and the request's retry budget is spent",
                        slot.index
                    ),
                );
            }
        }
    }

    // --- submission -------------------------------------------------------

    fn submit_stream(&self, request: Request) -> Result<ResponseStream, ClusterError> {
        let (target, preferred, rerouted) = self.decide(&request.chunk_ids);
        let Some(target) = target else {
            self.stats.rejections.fetch_add(1, Ordering::Relaxed);
            return Err(ClusterError::NoHealthyReplica);
        };
        if rerouted {
            self.stats.reroutes.fetch_add(1, Ordering::Relaxed);
        }
        Ok(self.place(request, target, preferred, false))
    }

    fn submit_to(&self, worker: usize, request: Request) -> ResponseStream {
        let (_, preferred, _) = self.decide(&request.chunk_ids);
        // Pinned placement blocks for queue space (admin tooling and the
        // bench harness drive placement themselves and expect admission).
        self.place(request, worker, preferred, true)
    }

    fn place(
        &self,
        request: Request,
        worker: usize,
        preferred: usize,
        blocking: bool,
    ) -> ResponseStream {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, stream) = ResponseStream::channel();
        let wire = WireRequest::from_request(&request);
        // Every routed request gets a trace: the client's id when it sent
        // one, else one derived from the journal id (always nonzero).
        let trace = if request.trace != 0 {
            request.trace
        } else {
            splitmix64(id ^ TRACE_SALT) | 1
        };
        let root_parent = request.trace_parent;
        let now = cb_obs::now_nanos();
        let root_span = alloc_span_id();
        let attempt_span = alloc_span_id();
        self.pending.lock().unwrap().insert(
            id,
            Pending {
                request,
                tx,
                worker,
                preferred,
                attempts: 0,
                counted: false,
                filter: ReplayFilter::new(),
                retries: 0,
                trace,
                root_span,
                root_parent,
                root_start_ns: now,
                attempt_span,
                attempt_name: "serve#0".into(),
                attempt_start_ns: now,
            },
        );
        cb_debug!("gateway", "place {id} -> worker {worker} trace={trace:#x}");
        self.mirror(&Message::ReplicatePending {
            id,
            request: wire.clone(),
            delivered_tokens: 0,
        });
        let sent = self.slots()[worker].send(&Message::Submit {
            id,
            trace,
            span: attempt_span,
            blocking,
            request: wire,
        });
        if sent.is_err() {
            // The worker died between routing and sending: respill rather
            // than lose the request.
            self.respill(id, Some(worker));
        }
        stream
    }

    // --- RPCs -------------------------------------------------------------

    fn rpc(&self, worker: usize, build: impl FnOnce(u64) -> Message) -> Result<Message, NetError> {
        let rpc = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = channel::unbounded();
        self.rpcs.lock().unwrap().insert(rpc, tx);
        if let Err(e) = self.slots()[worker].send(&build(rpc)) {
            self.rpcs.lock().unwrap().remove(&rpc);
            return Err(e);
        }
        rx.recv_timeout(self.cfg.retry.rpc_timeout).map_err(|_| {
            self.rpcs.lock().unwrap().remove(&rpc);
            NetError::Timeout
        })
    }

    fn register_chunk_impl(
        &self,
        tokens: &[TokenId],
        eager_at_home: bool,
    ) -> Result<ChunkId, EngineError> {
        if tokens.is_empty() {
            return Err(EngineError::EmptyChunk);
        }
        // Content-addressed ids let the gateway place the chunk before
        // any worker has seen it.
        let id = hash_tokens(tokens);
        let home = self.home_of(id);
        let slots = self.slots();
        // Fan the registration out, then await every reply: lazy at every
        // worker (any of them can repair a miss by precompute), eager KV
        // precompute + persistent-tier replication only at the home.
        let mut waits = Vec::with_capacity(slots.len());
        for slot in &slots {
            let rpc = self.next_id.fetch_add(1, Ordering::Relaxed);
            let (tx, rx) = channel::unbounded();
            self.rpcs.lock().unwrap().insert(rpc, tx);
            let msg = Message::RegisterChunk {
                rpc,
                eager: eager_at_home && slot.index == home,
                tokens: tokens.to_vec(),
            };
            if slot.send(&msg).is_err() {
                self.rpcs.lock().unwrap().remove(&rpc);
                return Err(EngineError::Storage(format!(
                    "worker {} unreachable during chunk registration",
                    slot.index
                )));
            }
            waits.push((slot.index, rpc, rx));
        }
        for (index, rpc, rx) in waits {
            let reply = rx.recv_timeout(self.cfg.retry.rpc_timeout).map_err(|_| {
                self.rpcs.lock().unwrap().remove(&rpc);
                EngineError::Storage(format!(
                    "RegisterChunk RPC to worker {index} timed out after {:?}",
                    self.cfg.retry.rpc_timeout
                ))
            })?;
            match reply {
                Message::RegisterReply {
                    result: Ok(raw), ..
                } => {
                    debug_assert_eq!(raw, id.0, "content-addressed ids must agree");
                }
                Message::RegisterReply {
                    result: Err(failure),
                    ..
                } => {
                    return Err(failure.into_error());
                }
                other => {
                    return Err(EngineError::Storage(format!(
                        "worker {index} sent {other:?} instead of a registration reply"
                    )));
                }
            }
        }
        // Record (and replicate) the registration only once every worker
        // confirmed it — a standby must never believe in a chunk the
        // cluster does not actually hold.
        self.chunks.lock().unwrap().insert(id.0, tokens.to_vec());
        self.mirror(&Message::ReplicateChunk {
            tokens: tokens.to_vec(),
        });
        Ok(id)
    }

    // --- client sessions ---------------------------------------------------

    /// Serves one remote client connection: relays submissions through
    /// the router and registration/status RPCs to the cluster.
    fn client_loop(self: Arc<Self>, conn: Arc<dyn Transport>) {
        let tick = self.cfg.tick();
        let mut relays: Vec<JoinHandle<()>> = Vec::new();
        loop {
            if self.shutdown.load(Ordering::Relaxed) {
                break;
            }
            match conn.recv_timeout(tick) {
                Ok(Message::Submit {
                    id,
                    trace,
                    span,
                    request,
                    ..
                }) => {
                    let mut request = request.into_request();
                    request.trace = trace;
                    request.trace_parent = span;
                    match self.submit_stream(request) {
                        Ok(stream) => {
                            let conn = Arc::clone(&conn);
                            relays.push(std::thread::spawn(move || {
                                let mut terminal = false;
                                for ev in stream {
                                    terminal = terminal || ev.is_terminal();
                                    let msg = Message::Ev {
                                        id,
                                        trace,
                                        event: WireEvent::from_event(&ev),
                                    };
                                    if conn.send(&msg).is_err() {
                                        return;
                                    }
                                }
                                if !terminal {
                                    let failure = WireFailure::from_error(&EngineError::Canceled);
                                    let _ = conn.send(&Message::Ev {
                                        id,
                                        trace,
                                        event: WireEvent::Failed(failure),
                                    });
                                }
                            }));
                        }
                        Err(ClusterError::NoHealthyReplica) => {
                            let err = EngineError::Remote {
                                code: ErrorCode::NoHealthyWorker,
                                message: ClusterError::NoHealthyReplica.to_string(),
                            };
                            let _ = conn.send(&Message::Ev {
                                id,
                                trace,
                                event: WireEvent::Failed(WireFailure::from_error(&err)),
                            });
                        }
                    }
                }
                Ok(Message::Metrics { rpc }) => {
                    let snapshot = self.scrape();
                    let _ = conn.send(&Message::MetricsReply {
                        rpc,
                        snapshot: snapshot.encode(),
                    });
                }
                Ok(Message::RegisterChunk { rpc, eager, tokens }) => {
                    let result = self
                        .register_chunk_impl(&tokens, eager)
                        .map(|id| id.0)
                        .map_err(|e| WireFailure::from_error(&e));
                    let _ = conn.send(&Message::RegisterReply { rpc, result });
                }
                Ok(Message::Status { rpc }) => {
                    let slots = self.slots();
                    let healthy = slots.iter().map(|s| self.refresh_slot(s)).collect();
                    let probes = slots
                        .iter()
                        .map(|s| s.state.lock().unwrap().probe)
                        .collect();
                    let _ = conn.send(&Message::ClusterStatusReply {
                        rpc,
                        healthy,
                        probes,
                    });
                }
                Ok(Message::Shutdown) | Err(NetError::Closed) => break,
                Ok(_) => {}
                Err(NetError::Timeout) => {
                    let (done, live): (Vec<_>, Vec<_>) =
                        relays.drain(..).partition(|h| h.is_finished());
                    for h in done {
                        let _ = h.join();
                    }
                    relays = live;
                }
                Err(_) => break,
            }
        }
        // On a clean client exit, let in-flight relays finish; on gateway
        // shutdown they are detached (the process is going down and their
        // streams may never resolve).
        if !self.shutdown.load(Ordering::Relaxed) {
            for h in relays {
                let _ = h.join();
            }
        }
    }
}

/// The coordinator (see module docs). Dropping it sends `Shutdown` to
/// every worker and joins its demux threads; pending streams close,
/// reporting [`EngineError::Canceled`] to collectors.
pub struct Gateway {
    inner: Arc<GwInner>,
    demux: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for Gateway {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gateway")
            .field("workers", &self.inner.n_workers())
            .finish()
    }
}

impl Gateway {
    /// An empty gateway; attach workers before submitting.
    pub fn new(cfg: GatewayConfig) -> Self {
        Self {
            inner: Arc::new(GwInner {
                cfg,
                workers: RwLock::new(Vec::new()),
                pending: Mutex::new(HashMap::new()),
                rpcs: Mutex::new(HashMap::new()),
                chunks: Mutex::new(HashMap::new()),
                standbys: Mutex::new(Vec::new()),
                next_id: AtomicU64::new(1),
                shutdown: AtomicBool::new(false),
                stats: AtomicClusterStats::default(),
                published: Mutex::new(ClusterStats::default()),
            }),
            demux: Mutex::new(Vec::new()),
        }
    }

    /// A gateway resuming a failed primary's role from mirrored state
    /// (the takeover half of [`crate::standby::Standby`]).
    ///
    /// The inherited roster is materialized as **placeholder slots** in
    /// the original order — same indices, so rendezvous chunk homes are
    /// exactly what the old primary computed — with no connection and
    /// marked unhealthy until each worker re-attaches and adopts its
    /// slot. `chunks` re-seeds the registry so registrations survive;
    /// re-registration at the workers happens lazily on their next miss
    /// (workers keep their stores across a gateway death).
    pub fn resume(
        cfg: GatewayConfig,
        roster: Vec<(u64, u64)>,
        chunks: HashMap<u64, Vec<TokenId>>,
        takeovers: u64,
    ) -> Self {
        let gw = Gateway::new(cfg);
        {
            let mut workers = gw.inner.workers.write().unwrap();
            for (index, (id, incarnation)) in roster.into_iter().enumerate() {
                workers.push(Arc::new(WorkerSlot {
                    index,
                    id,
                    incarnation: AtomicU64::new(incarnation),
                    conn: RwLock::new(None),
                    admissions: AtomicU64::new(0),
                    state: Mutex::new(SlotState {
                        probe: ServiceProbe::default(),
                        stats: ServiceStats::default(),
                        last_heartbeat: Instant::now(),
                        marked_up: true,
                        connected: false,
                        was_healthy: false,
                    }),
                }));
            }
        }
        *gw.inner.chunks.lock().unwrap() = chunks;
        gw.inner.stats.takeovers.store(takeovers, Ordering::Relaxed);
        gw
    }

    /// Attaches a worker connection: blocks for its `HelloWorker` frame
    /// (so health state is settled when this returns), assigns the next
    /// index — or, for a known identity with a higher incarnation, its
    /// **old** index — and starts the connection's demux thread.
    pub fn attach(&self, conn: Arc<dyn Transport>) -> Result<usize, NetError> {
        match self.accept(conn)? {
            Accepted::Worker(index) => Ok(index),
            Accepted::Client | Accepted::Standby => Err(NetError::Io(
                "expected a HelloWorker frame, got a client/standby hello".into(),
            )),
        }
    }

    /// Accepts a new connection of any kind: workers are attached (a
    /// known identity with a higher incarnation adopts its old slot),
    /// clients get a session thread speaking submit/register/status, and
    /// standbys get a state snapshot plus the live replication feed.
    pub fn accept(&self, conn: Arc<dyn Transport>) -> Result<Accepted, NetError> {
        match conn.recv_timeout(self.inner.cfg.attach_timeout)? {
            Message::HelloWorker {
                id,
                incarnation,
                probe,
                stats,
            } => {
                let slot = {
                    let mut workers = self.inner.workers.write().unwrap();
                    if let Some(existing) = workers.iter().find(|s| s.id == id) {
                        // Re-attach: adopt the old slot, keeping chunk
                        // homes (same index), admission counters, and the
                        // health edge-detector's memory.
                        let current = existing.incarnation.load(Ordering::Relaxed);
                        if incarnation <= current {
                            return Err(NetError::Io(format!(
                                "stale hello from worker {id:#018x}: \
                                 incarnation {incarnation} does not exceed current {current}"
                            )));
                        }
                        existing.incarnation.store(incarnation, Ordering::Relaxed);
                        *existing.conn.write().unwrap() = Some(Arc::clone(&conn));
                        {
                            let mut st = existing.state.lock().unwrap();
                            st.probe = probe;
                            st.stats = stats;
                            st.last_heartbeat = Instant::now();
                            st.connected = true;
                        }
                        self.inner.refresh_slot(existing);
                        self.inner.stats.adoptions.fetch_add(1, Ordering::Relaxed);
                        Arc::clone(existing)
                    } else {
                        let index = workers.len();
                        let healthy_now = probe.healthy();
                        let slot = Arc::new(WorkerSlot {
                            index,
                            id,
                            incarnation: AtomicU64::new(incarnation),
                            conn: RwLock::new(Some(Arc::clone(&conn))),
                            admissions: AtomicU64::new(0),
                            state: Mutex::new(SlotState {
                                probe,
                                stats,
                                last_heartbeat: Instant::now(),
                                marked_up: true,
                                connected: true,
                                // Start from the observed state: a worker
                                // that attaches unhealthy is not a failover.
                                was_healthy: healthy_now,
                            }),
                        });
                        workers.push(Arc::clone(&slot));
                        slot
                    }
                };
                let index = slot.index;
                let inner = Arc::clone(&self.inner);
                let handle = std::thread::Builder::new()
                    .name(format!("cb-net-gw-demux-{index}"))
                    .spawn(move || inner.demux_loop(slot, conn, incarnation))
                    .map_err(|e| NetError::Io(e.to_string()))?;
                self.demux.lock().unwrap().push(handle);
                self.inner.mirror(&self.inner.roster_msg());
                Ok(Accepted::Worker(index))
            }
            Message::HelloClient => {
                let inner = Arc::clone(&self.inner);
                let handle = std::thread::Builder::new()
                    .name("cb-net-gw-client".into())
                    .spawn(move || inner.client_loop(conn))
                    .map_err(|e| NetError::Io(e.to_string()))?;
                self.demux.lock().unwrap().push(handle);
                Ok(Accepted::Client)
            }
            Message::HelloStandby => {
                // Snapshot-then-subscribe, atomically with respect to
                // concurrent mirror writes: holding the subscriber lock
                // while snapshotting means the standby misses no update
                // between its snapshot and the live feed.
                {
                    let mut standbys = self.inner.standbys.lock().unwrap();
                    conn.send(&self.inner.roster_msg())?;
                    for tokens in self.inner.chunks.lock().unwrap().values() {
                        conn.send(&Message::ReplicateChunk {
                            tokens: tokens.clone(),
                        })?;
                    }
                    for (&id, p) in self.inner.pending.lock().unwrap().iter() {
                        conn.send(&Message::ReplicatePending {
                            id,
                            request: WireRequest::from_request(&p.request),
                            delivered_tokens: p.filter.tokens_delivered() as u32,
                        })?;
                    }
                    standbys.push(Arc::clone(&conn));
                }
                // Keepalive: re-send the roster every tick. Its silence
                // (or the connection closing) is what the standby's
                // takeover detector watches.
                let inner = Arc::clone(&self.inner);
                let handle = std::thread::Builder::new()
                    .name("cb-net-gw-standby".into())
                    .spawn(move || {
                        let tick = inner.cfg.tick();
                        loop {
                            std::thread::sleep(tick);
                            if inner.shutdown.load(Ordering::Relaxed) {
                                return;
                            }
                            if conn.send(&inner.roster_msg()).is_err() {
                                return; // Standby gone; mirror() reaps it.
                            }
                        }
                    })
                    .map_err(|e| NetError::Io(e.to_string()))?;
                self.demux.lock().unwrap().push(handle);
                Ok(Accepted::Standby)
            }
            other => Err(NetError::Io(format!(
                "expected a hello frame, got {other:?}"
            ))),
        }
    }

    /// Number of attached workers (healthy or not).
    pub fn n_workers(&self) -> usize {
        self.inner.n_workers()
    }

    /// Marks a worker up or down for routing (operator control / fault
    /// injection). Idempotent: re-marking an already-down worker counts
    /// no additional failover.
    pub fn set_worker_health(&self, index: usize, healthy: bool) {
        let slot = self.inner.slots()[index].clone();
        {
            let mut st = slot.state.lock().unwrap();
            st.marked_up = healthy;
        }
        self.inner.refresh_slot(&slot);
    }

    /// True if worker `index` is currently eligible for routing.
    pub fn worker_healthy(&self, index: usize) -> bool {
        let slot = self.inner.slots()[index].clone();
        self.inner.refresh_slot(&slot)
    }

    /// The stable home worker of a chunk (health never moves homes).
    pub fn home_of(&self, id: ChunkId) -> usize {
        self.inner.home_of(id)
    }

    /// Routing decision for a chunk set: `(target, rerouted)`, `None` if
    /// no worker is healthy.
    pub fn route(&self, chunk_ids: &[ChunkId]) -> Option<(usize, bool)> {
        let (target, _, rerouted) = self.inner.decide(chunk_ids);
        target.map(|t| (t, rerouted))
    }

    /// The locality-preferred worker for a chunk set (health ignored).
    pub fn preferred(&self, chunk_ids: &[ChunkId]) -> usize {
        self.inner.decide(chunk_ids).1
    }

    /// The healthy worker currently owing the least work per its last
    /// reported probe. Ties go to the lowest index.
    pub fn least_loaded(&self, exclude: Option<usize>) -> Option<usize> {
        self.inner.least_loaded(exclude)
    }

    /// Registers a chunk cluster-wide: tokens on every worker, the KV
    /// precomputed eagerly (and replicated to the persistent tier) only
    /// at the chunk's home.
    pub fn register_chunk(&self, tokens: &[TokenId]) -> Result<ChunkId, EngineError> {
        self.inner.register_chunk_impl(tokens, true)
    }

    /// Registers a chunk on every worker without precomputing any KV.
    pub fn register_chunk_lazy(&self, tokens: &[TokenId]) -> Result<ChunkId, EngineError> {
        self.inner.register_chunk_impl(tokens, false)
    }

    /// Registers many chunks, returning ids in input order.
    pub fn register_chunks(&self, chunks: &[Vec<TokenId>]) -> Result<Vec<ChunkId>, EngineError> {
        chunks.iter().map(|c| self.register_chunk(c)).collect()
    }

    /// Submits a request through the locality router and returns its
    /// event stream (fed by `Ev` frames as the worker streams them).
    pub fn submit_stream(&self, request: Request) -> Result<ResponseStream, ClusterError> {
        self.inner.submit_stream(request)
    }

    /// Blocking one-shot convenience over [`Gateway::submit_stream`].
    /// Routing failures surface as the structured
    /// [`EngineError::Remote`] with [`ErrorCode::NoHealthyWorker`].
    pub fn submit(&self, request: Request) -> Result<Response, EngineError> {
        match self.submit_stream(request) {
            Ok(stream) => stream.collect(),
            Err(e @ ClusterError::NoHealthyReplica) => Err(EngineError::Remote {
                code: ErrorCode::NoHealthyWorker,
                message: e.to_string(),
            }),
        }
    }

    /// Submits directly to an explicit worker, bypassing the router but
    /// keeping the cluster accounting (admin tooling and the bench
    /// harness drive placement themselves).
    pub fn submit_to(&self, worker: usize, request: Request) -> ResponseStream {
        self.inner.submit_to(worker, request)
    }

    /// Fresh probe + counters from a worker, via a `Status` RPC (not the
    /// heartbeat cache).
    pub fn worker_status(&self, index: usize) -> Result<(ServiceProbe, ServiceStats), NetError> {
        match self.inner.rpc(index, |rpc| Message::Status { rpc })? {
            Message::StatusReply { probe, stats, .. } => Ok((probe, stats)),
            other => Err(NetError::Io(format!("unexpected status reply {other:?}"))),
        }
    }

    /// Asks every worker to finish all queued work; returns when all have.
    pub fn drain(&self) -> Result<(), NetError> {
        for index in 0..self.n_workers() {
            match self.inner.rpc(index, |rpc| Message::Drain { rpc })? {
                Message::DrainReply { .. } => {}
                other => return Err(NetError::Io(format!("unexpected drain reply {other:?}"))),
            }
        }
        Ok(())
    }

    /// Snapshot of the cluster counters.
    ///
    /// Most of these are also published cluster-wide as
    /// `cb_gateway_*_total` registry series (see [`Gateway::scrape`]), so
    /// one scrape sees retries, failovers, and adoptions next to every
    /// other metric; prefer the scrape for monitoring and keep this
    /// struct for in-process assertions.
    pub fn stats(&self) -> ClusterStats {
        self.inner.stats_snapshot()
    }

    /// Cluster-aggregated metrics: this process's registry (with the
    /// gateway counters freshly published) merged with every connected
    /// worker's, instance-deduplicated so loopback workers sharing the
    /// process-global registry are counted once.
    pub fn scrape(&self) -> MetricsSnapshot {
        self.inner.scrape()
    }

    /// [`Gateway::scrape`] rendered as Prometheus text exposition.
    pub fn scrape_text(&self) -> String {
        self.inner.scrape().to_prometheus()
    }

    /// The last heartbeat-reported scheduler counters per worker.
    pub fn heartbeat_service_stats(&self) -> Vec<ServiceStats> {
        self.inner
            .slots()
            .iter()
            .map(|w| w.state.lock().unwrap().stats)
            .collect()
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Relaxed);
        for slot in self.inner.slots() {
            let _ = slot.send(&Message::Shutdown);
        }
        let handles: Vec<_> = self.demux.lock().unwrap().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}
