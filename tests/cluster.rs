//! Cluster-serving integration: routing determinism, the shared
//! persistent tier, and failover under injected replica faults.

use cacheblend::prelude::*;
use cacheblend::serving::cluster::ClusterService;
use cacheblend::tokenizer::TokenKind::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn test_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "cb-cluster-test-{}-{}-{}",
        std::process::id(),
        tag,
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// A RAM-only cluster of `n` replicas compiled from one profile/seed.
fn ram_cluster(n: usize) -> ClusterService {
    ClusterService::build(
        n,
        ServiceConfig::default().workers(1).queue_capacity(32),
        |_| EngineBuilder::new(ModelProfile::Tiny).seed(11).build(),
    )
    .unwrap()
}

fn corpus(cluster: &ClusterService) -> (Vec<Vec<u32>>, Vec<u32>) {
    let v = cluster.replica(0).engine().model().cfg.vocab.clone();
    let chunks: Vec<Vec<u32>> = (0..10)
        .map(|i| {
            vec![
                v.id(Entity(i as u32)),
                v.id(Attr(i as u32 % 8)),
                v.id(Value(i as u32 * 2)),
                v.id(Sep),
            ]
        })
        .collect();
    let q = vec![v.id(Query), v.id(Entity(3)), v.id(Attr(3)), v.id(QMark)];
    (chunks, q)
}

/// Runs one seeded request sequence through a cluster and returns every
/// response's (answer, ratio, ctx_len, sources-as-hits) fingerprint in
/// submission order.
fn run_sequence(cluster: &ClusterService, n_requests: usize) -> Vec<(Vec<u32>, f32, usize)> {
    let (chunks, q) = corpus(cluster);
    let ids = cluster.register_chunks(&chunks).unwrap();
    let mut rng = SmallRng::seed_from_u64(0xDE_7E12);
    let streams: Vec<_> = (0..n_requests)
        .map(|_| {
            let k = rng.random_range(2usize..5);
            let set: Vec<_> = (0..k)
                .map(|_| ids[rng.random_range(0usize..ids.len())])
                .collect();
            let req = Request::new(set, q.clone())
                .ratio(0.45)
                .max_new_tokens(1 + rng.random_range(0usize..4));
            cluster.submit_stream(req).expect("healthy cluster admits")
        })
        .collect();
    streams
        .into_iter()
        .map(|s| {
            let resp = s.collect().expect("request serves");
            (resp.answer, resp.recompute_ratio, resp.blend.stats.ctx_len)
        })
        .collect()
}

/// Satellite: the same seeded workload through 1 replica and through N
/// replicas yields identical per-request token output — routing changes
/// placement and latency, never results. Checked at 1 and 4 compute-pool
/// threads.
#[test]
fn replica_count_never_changes_request_results() {
    for threads in [1usize, 4] {
        cacheblend::tensor::pool::set_threads(threads);
        let single = run_sequence(&ram_cluster(1), 24);
        for replicas in [2usize, 3] {
            let multi = run_sequence(&ram_cluster(replicas), 24);
            assert_eq!(
                single, multi,
                "threads {threads}: {replicas}-replica output diverged from 1-replica"
            );
        }
    }
    cacheblend::tensor::pool::set_threads(cacheblend::tensor::pool::default_threads());
}

/// A request spilled (or failed over) to a non-home replica serves its
/// chunks from the shared persistent tier — discovered on demand, not
/// re-precomputed.
#[test]
fn non_home_replicas_serve_from_the_shared_tier() {
    let dir = test_dir("shared-tier");
    let cluster = ClusterService::build(
        2,
        ServiceConfig::default().workers(1).queue_capacity(8),
        |_| {
            EngineBuilder::new(ModelProfile::Tiny)
                .seed(11)
                .storage(
                    StorageConfig::default()
                        .tier(DeviceKind::CpuRam, 1 << 20)
                        .shared_disk_tier(DeviceKind::NvmeSsd, 1 << 30, &dir, false),
                )
                .build()
        },
    )
    .unwrap();
    let (chunks, q) = corpus(&cluster);
    let ids = cluster.register_chunks(&chunks).unwrap();

    // Registration itself replicated every home cache onto the shared
    // persistent tier (no explicit persist needed); drain the
    // write-behind flushers so the segments are discoverable on disk.
    for r in 0..2 {
        cluster.replica(r).engine().flush_storage().unwrap();
        assert!(
            cluster.replica(r).engine().store().tier_len(0) > 0,
            "home caches stay RAM-resident — replication does not demote"
        );
    }

    // Serve each chunk at its NON-home replica: the KV must come from the
    // shared tier (a Hit on the disk tier), never from re-precompute.
    for &id in &ids {
        let away = 1 - cluster.home_of(id);
        let resp = cluster
            .submit_to(
                away,
                Request::new(vec![id], q.clone())
                    .ratio(0.45)
                    .max_new_tokens(1),
            )
            .collect()
            .unwrap();
        assert_eq!(
            resp.chunk_sources,
            vec![cacheblend::engine::ChunkSource::Hit { tier: 1 }],
            "chunk {id:?} served away from home must hit the shared tier"
        );
    }
    let discovered: u64 = (0..2)
        .map(|r| cluster.replica(r).engine().store().stats().discovered)
        .sum();
    assert!(
        discovered > 0,
        "at least some entries were adopted cross-replica via discovery"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Injected replica faults: downing replicas mid-workload loses no
/// requests (they fail over), and downing everything is reported rather
/// than hung.
#[test]
fn faults_reroute_without_losing_requests() {
    let cluster = ram_cluster(3);
    let (chunks, q) = corpus(&cluster);
    let ids = cluster.register_chunks(&chunks).unwrap();
    let mut rng = SmallRng::seed_from_u64(0xFA_017);
    let mut served = 0u64;
    for round in 0..30 {
        // Rotate a victim down every few requests.
        if round % 5 == 0 {
            for r in 0..3 {
                cluster.set_replica_health(r, r != (round / 5) % 3);
            }
        }
        let set: Vec<_> = (0..3)
            .map(|_| ids[rng.random_range(0usize..ids.len())])
            .collect();
        let resp = cluster
            .submit(Request::new(set, q.clone()).ratio(0.45).max_new_tokens(2))
            .expect("two healthy replicas remain");
        assert!(resp.blend.stats.ctx_len > 0);
        served += 1;
    }
    assert_eq!(served, 30);
    assert_eq!(cluster.aggregate_service_stats().completed, 30);
    assert!(
        cluster.stats().failovers > 0,
        "rotating victims must have forced failovers"
    );

    // Total outage: reported, not hung.
    for r in 0..3 {
        cluster.set_replica_health(r, false);
    }
    assert!(cluster
        .submit_stream(Request::new(vec![ids[0]], q))
        .is_err());
    assert_eq!(cluster.stats().rejections, 1);
}
