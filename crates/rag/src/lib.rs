//! RAG substrate: synthetic datasets, embeddings, vector retrieval, and
//! generation-quality metrics.
//!
//! The paper evaluates on Musique, 2WikiMQA, SAMSum and MultiNews; none are
//! usable offline with a compiled model, so this crate generates structured
//! analogues with the same *mechanics*: documents are streams of facts
//! (some coreferent, some self-contained) split into fixed-size chunks —
//! so cross-chunk dependence emerges exactly where it does in real RAG:
//! coreferences whose antecedent landed in the previous chunk, and facts
//! straddling a chunk boundary. Queries come with gold answers, retrieval
//! runs over deterministic embeddings, and quality is scored with the
//! paper's metrics (token-level F1, Rouge-L).
//!
//! Modules:
//!
//! - [`metrics`] — token-level F1 and Rouge-L.
//! - [`embed`] — deterministic bag-of-token random-projection embeddings.
//! - [`index`] — exact L2 top-k search.
//! - [`datasets`] — the four dataset generators and retrieval plumbing.

pub mod datasets;
pub mod embed;
pub mod index;
pub mod metrics;

pub use datasets::{Dataset, DatasetKind, GenConfig, QueryCase};
