//! Figure 15: sensitivity to (a) chunk count, (b) chunk length, (c) batch
//! size — CacheBlend's compute time against full recompute.
//!
//! Paper shape: the reduction ratio stays roughly constant across chunk
//! counts and lengths, and grows more valuable with batch size (prefill
//! dominates larger batches). Quality is verified to stay within the loss
//! budget on the tiny model.

use cb_baselines::SchemeKind;
use cb_rag::datasets::{Dataset, DatasetKind, GenConfig};
use cb_storage::device::DeviceKind;
use cb_storage::perf::PaperModel;
use cb_tokenizer::Vocab;

use crate::harness::{scheme_ttft, ExpModel, QualityEval};
use crate::out::{emit, Row};

/// Runs the experiment and emits rows.
pub fn run() {
    let exp = ExpModel::new(PaperModel::Mistral7B, 11);
    let ratio = 0.15f32;
    let device = DeviceKind::NvmeSsd;

    // (a) Number of chunks (paper-scale 512-token chunks).
    let mut rows = Vec::new();
    let ds = Dataset::standard(DatasetKind::TwoWikiSim, 7);
    for k in [3usize, 6, 9, 12] {
        let mut ev = QualityEval::new(&exp.model);
        let full_q = ev.eval(&ds, SchemeKind::FullRecompute, 0.0, k, 16);
        let blend_q = ev.eval(&ds, SchemeKind::CacheBlend, 0.18, k, 16);
        rows.push(
            Row::new("fig15a")
                .col("chunks", k)
                .num(
                    "full_compute_s",
                    scheme_ttft(
                        &exp.perf,
                        SchemeKind::FullRecompute,
                        k,
                        512,
                        32,
                        device,
                        0.0,
                    ),
                )
                .num(
                    "blend_compute_s",
                    exp.perf.blend_compute_time(ratio as f64, k * 512, 32),
                )
                .num("quality_loss", full_q.mean_score - blend_q.mean_score),
        );
    }
    emit("fig15a_chunk_count", &rows);

    // (b) Chunk length (paper-scale 300/600/900, scaled sim chunks).
    let mut rows = Vec::new();
    for (paper_len, sim_len) in [(300usize, 12usize), (600, 24), (900, 36)] {
        let mut cfg = GenConfig::standard(DatasetKind::TwoWikiSim, 7);
        cfg.chunk_len = sim_len;
        let ds = Dataset::generate(Vocab::default_eval(), &cfg);
        let mut ev = QualityEval::new(&exp.model);
        let full_q = ev.eval(&ds, SchemeKind::FullRecompute, 0.0, 6, 16);
        let blend_q = ev.eval(&ds, SchemeKind::CacheBlend, 0.18, 6, 16);
        rows.push(
            Row::new("fig15b")
                .col("chunk_tokens", paper_len)
                .num(
                    "full_compute_s",
                    exp.perf.ttft_full_prefill(6 * paper_len + 32),
                )
                .num(
                    "blend_compute_s",
                    exp.perf.blend_compute_time(ratio as f64, 6 * paper_len, 32),
                )
                .num("quality_loss", full_q.mean_score - blend_q.mean_score),
        );
    }
    emit("fig15b_chunk_length", &rows);

    // (c) Batch size: prefill compute scales with the batch; the GPU
    // serializes prefills, so batch compute = batch × per-request compute.
    let mut rows = Vec::new();
    for batch in [2usize, 6, 10] {
        let full = exp.perf.ttft_full_prefill(6 * 512 + 32) * batch as f64;
        let blend = exp.perf.blend_compute_time(ratio as f64, 6 * 512, 32) * batch as f64;
        rows.push(
            Row::new("fig15c")
                .col("batch", batch)
                .num("full_compute_s", full)
                .num("blend_compute_s", blend)
                .num("reduction", full / blend),
        );
    }
    emit("fig15c_batch_size", &rows);
}
