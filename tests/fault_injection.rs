//! Fault-injection matrix for the persistent disk tier.
//!
//! Every case damages one segment of a populated cache dir in a specific
//! way — truncation mid-header, truncation mid-payload, a zero-length
//! file, a stale `.tmp` orphan, a flipped checksum word — and asserts the
//! same three things: startup recovery indexes exactly the intact
//! segments, the damaged artifact is quarantined (deleted, never served),
//! and the intact siblings still load byte-identically.

use bytes::Bytes;
use cacheblend::storage::backend::BackendError;
use cacheblend::storage::{DiskBackend, StorageBackend};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn test_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "cb-fault-{}-{}-{}",
        std::process::id(),
        tag,
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

const SIBLINGS: [u64; 3] = [1, 2, 3];
const VICTIM: u64 = 9;
/// Segment framing: magic/version/key/len header before the payload.
const HEADER_LEN: usize = 24;

fn payload_of(key: u64) -> Bytes {
    Bytes::from(vec![key as u8; 64 + (key as usize % 32)])
}

fn segment_path(dir: &Path, key: u64) -> PathBuf {
    dir.join(format!("{key:016x}.seg"))
}

/// Populates a cache dir with the three siblings plus the victim, durably.
fn populate(dir: &Path) {
    let b = DiskBackend::new(dir, None).unwrap();
    for &k in &SIBLINGS {
        b.put(k, payload_of(k)).unwrap();
    }
    b.put(VICTIM, payload_of(VICTIM)).unwrap();
    b.flush().unwrap();
}

/// Asserts the recovery outcome after one injected fault: exactly the
/// siblings are indexed, the victim is gone (and its artifact deleted),
/// and every sibling still serves its exact bytes.
fn assert_recovery(dir: &Path, b: &DiskBackend, dropped_artifacts: usize, case: &str) {
    assert_eq!(
        b.recovered_segments(),
        SIBLINGS.len(),
        "{case}: only the intact siblings are indexed"
    );
    assert_eq!(
        b.dropped_segments(),
        dropped_artifacts,
        "{case}: damaged artifacts dropped at startup"
    );
    assert!(!b.contains(VICTIM), "{case}: victim must not be indexed");
    assert!(
        b.get(VICTIM).unwrap().is_none(),
        "{case}: victim reads as a clean miss"
    );
    assert!(
        !segment_path(dir, VICTIM).exists(),
        "{case}: quarantine removes the damaged segment file"
    );
    for &k in &SIBLINGS {
        assert_eq!(
            b.get(k).unwrap().unwrap(),
            payload_of(k),
            "{case}: sibling {k} must load byte-identically"
        );
    }
}

#[test]
fn truncation_mid_header_is_dropped_at_startup() {
    let dir = test_dir("mid-header");
    populate(&dir);
    let path = segment_path(&dir, VICTIM);
    let raw = std::fs::read(&path).unwrap();
    std::fs::write(&path, &raw[..HEADER_LEN / 2]).unwrap();

    let b = DiskBackend::new(&dir, None).unwrap();
    assert_recovery(&dir, &b, 1, "mid-header truncation");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncation_mid_payload_is_dropped_at_startup() {
    let dir = test_dir("mid-payload");
    populate(&dir);
    let path = segment_path(&dir, VICTIM);
    let raw = std::fs::read(&path).unwrap();
    std::fs::write(&path, &raw[..HEADER_LEN + (raw.len() - HEADER_LEN) / 2]).unwrap();

    let b = DiskBackend::new(&dir, None).unwrap();
    assert_recovery(&dir, &b, 1, "mid-payload truncation");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn zero_length_segment_is_dropped_at_startup() {
    let dir = test_dir("zero-len");
    populate(&dir);
    std::fs::write(segment_path(&dir, VICTIM), b"").unwrap();

    let b = DiskBackend::new(&dir, None).unwrap();
    assert_recovery(&dir, &b, 1, "zero-length segment");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_tmp_orphan_is_deleted_and_never_indexed() {
    let dir = test_dir("tmp-orphan");
    populate(&dir);
    // The victim's durable segment is *also* removed so the orphan is the
    // only artifact under its key — recovery must not resurrect it.
    std::fs::remove_file(segment_path(&dir, VICTIM)).unwrap();
    let orphan = dir.join(format!("{VICTIM:016x}.dead.tmp"));
    std::fs::write(&orphan, b"crash debris from a dead flusher").unwrap();

    let b = DiskBackend::new(&dir, None).unwrap();
    assert_recovery(&dir, &b, 1, "stale .tmp orphan");
    assert!(!orphan.exists(), "orphan deleted by exclusive recovery");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn flipped_checksum_word_is_dropped_at_startup() {
    let dir = test_dir("bad-checksum");
    populate(&dir);
    let path = segment_path(&dir, VICTIM);
    let mut raw = std::fs::read(&path).unwrap();
    let n = raw.len();
    for b in &mut raw[n - 8..] {
        *b ^= 0xFF;
    }
    std::fs::write(&path, &raw).unwrap();

    let b = DiskBackend::new(&dir, None).unwrap();
    assert_recovery(&dir, &b, 1, "flipped checksum word");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn live_corruption_quarantines_on_read_not_just_at_startup() {
    // The same checksum fault injected while the backend is open: the read
    // surfaces Corrupt exactly once, quarantines the segment, and siblings
    // are untouched.
    let dir = test_dir("live-corrupt");
    populate(&dir);
    let b = DiskBackend::new(&dir, None).unwrap();
    let path = segment_path(&dir, VICTIM);
    let mut raw = std::fs::read(&path).unwrap();
    raw[HEADER_LEN + 5] ^= 0x40;
    std::fs::write(&path, &raw).unwrap();

    assert_eq!(b.get(VICTIM).unwrap_err(), BackendError::Corrupt);
    assert!(!b.contains(VICTIM), "quarantined after the failed read");
    assert!(!path.exists(), "damaged segment deleted");
    assert!(
        b.get(VICTIM).unwrap().is_none(),
        "second read is a clean miss"
    );
    for &k in &SIBLINGS {
        assert_eq!(b.get(k).unwrap().unwrap(), payload_of(k));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tiered_store_repairs_quarantined_disk_entries_by_reinsert() {
    // Store-level view of the matrix: a corrupt disk-resident KV entry
    // surfaces StoreError::Corrupt, is evicted everywhere, leaves the
    // sibling servable, and a reinsert makes the id cleanly servable again.
    use cacheblend::kv::store::{KvStore, StoreError, TierConfig};
    use cacheblend::kv::ChunkId;
    use cacheblend::model::{Model, ModelConfig, ModelProfile};
    use cacheblend::storage::MemBackend;
    use std::sync::Arc;

    let dir = test_dir("store-level");
    let m = Model::compiled(ModelConfig::standard(ModelProfile::Tiny, 11));
    let v = m.cfg.vocab.clone();
    use cacheblend::tokenizer::TokenKind::*;
    let mk_cache = |i: u32| {
        cacheblend::kv::precompute::precompute_chunk(
            &m,
            &[
                v.id(Entity(i)),
                v.id(Attr(i % 8)),
                v.id(Value(i)),
                v.id(Sep),
            ],
        )
    };
    let victim_cache = mk_cache(1);
    let sibling_cache = mk_cache(2);
    let entry = cacheblend::kv::serialize::encode(&victim_cache).len() as u64;

    let store = KvStore::with_backends(vec![
        (
            TierConfig::new("ram", entry / 2), // nothing fits in RAM: all disk-resident,
            Arc::new(MemBackend::new()) as Arc<dyn StorageBackend>,
        ),
        (
            TierConfig::new("disk", 1 << 20),
            Arc::new(DiskBackend::new(&dir, None).unwrap()),
        ),
    ]);
    store.insert(ChunkId(1), &victim_cache).unwrap();
    store.insert(ChunkId(2), &sibling_cache).unwrap();
    store.flush().unwrap();
    assert_eq!(store.tier_of(ChunkId(1)), Some(1));

    assert!(store.corrupt(ChunkId(1), 40));
    let err = store.get(ChunkId(1)).unwrap_err();
    assert!(matches!(err, StoreError::Corrupt(_)), "got {err}");
    assert!(!store.contains(ChunkId(1)), "quarantined");
    assert_eq!(store.stats().corrupt_evictions, 1);
    assert_eq!(
        store.get(ChunkId(2)).unwrap().unwrap().0,
        sibling_cache,
        "sibling unaffected"
    );
    store.insert(ChunkId(1), &victim_cache).unwrap();
    assert_eq!(
        store.get(ChunkId(1)).unwrap().unwrap().0,
        victim_cache,
        "reinsert repairs the quarantined id"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
