//! Standalone chunk precompute.
//!
//! A chunk's KV cache is computed *in isolation* — the chunk cannot know
//! which chunks will precede it at serving time. Following PromptCache, the
//! chunk is prefilled behind a BOS sink token (so lookup heads behave as
//! they would in a real prompt) and the BOS rows are stripped; the cache is
//! stored at local positions `1..=len` and relocated with the Appendix-A
//! RoPE re-rotation when fused into a request.
//!
//! This isolation is exactly what loses cross-chunk attention: any token
//! whose program state depends on a *preceding* chunk (a `REF` coreference,
//! a chain continuation at the chunk start) gets a wrong value here — the
//! high-KV-deviation tokens CacheBlend later finds and repairs.

use cb_model::{KvCache, Model};
use cb_tokenizer::{TokenId, TokenKind};

/// Computes the standalone KV cache of `tokens` (local positions
/// `1..=tokens.len()`; the implicit BOS at position 0 is stripped).
///
/// # Panics
///
/// Panics if `tokens` is empty.
pub fn precompute_chunk(model: &Model, tokens: &[TokenId]) -> KvCache {
    assert!(!tokens.is_empty(), "cannot precompute an empty chunk");
    let bos = model.cfg.vocab.id(TokenKind::Bos);
    let mut full: Vec<TokenId> = Vec::with_capacity(tokens.len() + 1);
    full.push(bos);
    full.extend_from_slice(tokens);
    let (cache, _) = model.prefill(&full);
    strip_rows(&cache, 1)
}

/// Returns a copy of `cache` with the first `n` rows removed from every
/// layer (positions/tokens updated accordingly).
pub fn strip_rows(cache: &KvCache, n: usize) -> KvCache {
    assert!(n <= cache.len());
    let rows = cache.len();
    let mut out = KvCache {
        layers: Vec::with_capacity(cache.n_layers()),
        positions: cache.positions[n..].to_vec(),
        tokens: cache.tokens[n..].to_vec(),
    };
    for l in &cache.layers {
        out.layers.push(cb_model::LayerKv {
            k: l.k.slice_rows(n, rows),
            v: l.v.slice_rows(n, rows),
        });
    }
    out
}

/// Computes the BOS-only cache (one row at position 0). Every fused request
/// starts with this segment so the lookup heads' sink exists at position 0.
pub fn bos_cache(model: &Model) -> KvCache {
    let bos = model.cfg.vocab.id(TokenKind::Bos);
    let (cache, _) = model.prefill(&[bos]);
    cache
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_model::{ModelConfig, ModelProfile};
    use cb_tokenizer::TokenKind::*;

    fn model() -> Model {
        Model::compiled(ModelConfig::standard(ModelProfile::Tiny, 11))
    }

    #[test]
    fn precompute_strips_bos() {
        let m = model();
        let v = &m.cfg.vocab;
        let toks = vec![v.id(Entity(1)), v.id(Attr(0)), v.id(Value(3))];
        let c = precompute_chunk(&m, &toks);
        assert_eq!(c.len(), 3);
        assert_eq!(c.positions, vec![1, 2, 3]);
        assert_eq!(c.tokens, toks);
    }

    #[test]
    fn precompute_matches_prefill_rows() {
        let m = model();
        let v = &m.cfg.vocab;
        let toks = vec![v.id(Entity(1)), v.id(Attr(0)), v.id(Value(3))];
        let c = precompute_chunk(&m, &toks);
        let (full, _) = m.prefill(&[vec![v.id(Bos)], toks.clone()].concat());
        for l in 0..m.n_layers() {
            let want = full.layers[l].k.slice_rows(1, 4);
            let d = c.layers[l].k.frobenius_distance(&want);
            assert!(d < 1e-5, "layer {l} K mismatch after strip: {d}");
        }
    }

    #[test]
    fn bos_cache_is_single_row_at_zero() {
        let m = model();
        let c = bos_cache(&m);
        assert_eq!(c.len(), 1);
        assert_eq!(c.positions, vec![0]);
    }

    #[test]
    #[should_panic(expected = "empty chunk")]
    fn empty_chunk_rejected() {
        let m = model();
        let _ = precompute_chunk(&m, &[]);
    }
}
