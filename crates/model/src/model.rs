//! The [`Model`] type and its forward passes.
//!
//! All higher-level execution modes — full prefill, prefix-cached prefill,
//! full KV reuse, and CacheBlend's selective recompute — are composed from
//! three primitives exposed here:
//!
//! - [`Model::qkv`]: project residual rows to per-head Q/K/V (RoPE applied),
//! - [`Model::attend`]: masked multi-head attention of query rows against a
//!   full K/V set at arbitrary absolute positions,
//! - [`Model::mlp_delta`]: the layer's feed-forward residual delta.
//!
//! [`Model::forward_rows`] strings the primitives together for the common
//! "append these tokens to a cache" case (prefill = empty cache, decode =
//! one row). The CacheBlend fusor in `cb-core` drives the primitives
//! directly to implement §4.2's masked selective recompute.
//!
//! # Execution paths
//!
//! The primitives have two implementations:
//!
//! - The **blocked path** (default): QKV is a single fused blocked matmul
//!   over [`crate::weights::Layer::fused_qkv`] plus in-place RoPE; attention
//!   reads per-head column blocks in place (no `col_block` copies), applies
//!   the causal mask by binary search over the sorted key positions, the
//!   positional biases by O(1)/vectorized specializations, and runs heads in
//!   parallel on the `cb-tensor` thread pool (reduced in fixed head order,
//!   so results are bit-identical for any pool size). Every intermediate
//!   lives in a caller-provided [`Scratch`] arena: a warm decode loop
//!   allocates nothing.
//! - The **reference path** ([`Model::reference_kernels`] = true): the
//!   seed's original per-head scalar loops, kept as the parity baseline for
//!   tests and the "scalar" arm of the throughput benchmarks.

use cb_tensor::ops;
use cb_tensor::pool;
use cb_tensor::Matrix;
use cb_tokenizer::codes::CodeBook;
use cb_tokenizer::{TokenId, TokenKind};

use crate::config::ModelConfig;
use crate::kvcache::KvCache;
use crate::program;
use crate::scratch::{AttendScratch, HeadScratch, Scratch};
use crate::weights::{AttnBias, Layer};

/// Minimum `q_rows × keys` product before attention heads are fanned out
/// to the thread pool (below this the dispatch overhead dominates — e.g.
/// single-row decode steps stay serial).
const PAR_ATTEND_WORK: usize = 8192;

/// Per-layer attention probabilities of traced query rows (mean over heads,
/// `traced_q × keys`). Used for the forward-attention-deviation metric
/// (Δattn, Figures 4 and 6).
#[derive(Clone, Debug, Default)]
pub struct ForwardTrace {
    /// One matrix per layer.
    pub attn: Vec<Matrix>,
}

/// A compiled or random transformer.
#[derive(Clone, Debug)]
pub struct Model {
    /// Configuration (profile, heads, seeds).
    pub cfg: ModelConfig,
    /// Token identity codes shared with the dataset generators.
    pub codebook: CodeBook,
    /// Embedding table, `vocab × d_model`.
    pub embed: Matrix,
    /// Unembedding, `d_model × vocab`.
    pub unembed: Matrix,
    /// Transformer layers.
    pub layers: Vec<Layer>,
    /// When set, every forward primitive runs the seed's scalar reference
    /// implementation (per-head matmuls, copied column blocks, per-element
    /// mask/bias loops, copy-on-append caches). The throughput benchmarks
    /// flip this on one clone to measure the blocked path against it.
    pub reference_kernels: bool,
}

impl Model {
    /// Builds the compiled recall-program model for a configuration.
    pub fn compiled(cfg: ModelConfig) -> Self {
        program::compile(cfg)
    }

    /// Builds an all-noise model (used by throughput benches where only the
    /// computation shape matters).
    pub fn random(cfg: ModelConfig) -> Self {
        program::compile_noise_only(cfg)
    }

    /// This model with the reference (seed) kernels selected.
    pub fn with_reference_kernels(mut self) -> Self {
        self.reference_kernels = true;
        self
    }

    /// Number of layers.
    pub fn n_layers(&self) -> usize {
        self.layers.len()
    }

    /// Creates an empty KV cache shaped for this model.
    pub fn new_cache(&self) -> KvCache {
        KvCache::empty(self.n_layers(), self.cfg.kv_width())
    }

    /// Embeds tokens into residual rows (`tokens.len() × d_model`).
    pub fn embed_tokens(&self, tokens: &[TokenId]) -> Matrix {
        let mut x = Matrix::zeros(0, 0);
        self.embed_tokens_into(tokens, &mut x);
        x
    }

    /// [`Model::embed_tokens`] into a caller-provided buffer.
    pub fn embed_tokens_into(&self, tokens: &[TokenId], out: &mut Matrix) {
        out.zero_resize(tokens.len(), self.cfg.d_model());
        for (r, &t) in tokens.iter().enumerate() {
            out.row_mut(r).copy_from_slice(self.embed.row(t as usize));
        }
    }

    /// Projects residual rows to Q/K/V for `layer`, RoPE-rotating Q and K at
    /// the given absolute positions. Outputs are head-major
    /// (`rows × kv_width`).
    pub fn qkv(&self, layer: usize, x: &Matrix, pos: &[usize]) -> (Matrix, Matrix, Matrix) {
        let (mut q, mut k, mut v) = (Matrix::default(), Matrix::default(), Matrix::default());
        let mut fused = Matrix::default();
        self.qkv_into(layer, x, pos, &mut q, &mut k, &mut v, &mut fused);
        (q, k, v)
    }

    /// [`Model::qkv`] into caller-provided buffers (`fused` is the packed
    /// projection staging area): one blocked matmul against
    /// [`Layer::fused_qkv`], a split, and in-place RoPE.
    #[allow(clippy::too_many_arguments)]
    pub fn qkv_into(
        &self,
        layer: usize,
        x: &Matrix,
        pos: &[usize],
        q: &mut Matrix,
        k: &mut Matrix,
        v: &mut Matrix,
        fused: &mut Matrix,
    ) {
        assert_eq!(x.rows(), pos.len(), "row/position count mismatch");
        if self.reference_kernels {
            let (qr, kr, vr) = self.qkv_reference(layer, x, pos);
            *q = qr;
            *k = kr;
            *v = vr;
            return;
        }
        let hd = self.cfg.head_dim;
        let width = self.cfg.kv_width();
        let n = x.rows();
        x.matmul_into(&self.layers[layer].fused_qkv, fused);
        q.zero_resize(n, width);
        k.zero_resize(n, width);
        v.zero_resize(n, width);
        for r in 0..n {
            let src = fused.row(r);
            q.row_mut(r).copy_from_slice(&src[..width]);
            k.row_mut(r).copy_from_slice(&src[width..2 * width]);
            v.row_mut(r).copy_from_slice(&src[2 * width..]);
        }
        for (h, head) in self.layers[layer].heads.iter().enumerate() {
            if let Some(table) = &head.rope {
                let (lo, hi) = (h * hd, (h + 1) * hd);
                for (r, &p) in pos.iter().enumerate() {
                    table.rotate(&mut q.row_mut(r)[lo..hi], p as f32);
                    table.rotate(&mut k.row_mut(r)[lo..hi], p as f32);
                }
            }
        }
    }

    /// The seed's per-head QKV (3 scalar matmuls and a column-block copy
    /// per head) — the scalar baseline.
    pub fn qkv_reference(
        &self,
        layer: usize,
        x: &Matrix,
        pos: &[usize],
    ) -> (Matrix, Matrix, Matrix) {
        assert_eq!(x.rows(), pos.len(), "row/position count mismatch");
        let hd = self.cfg.head_dim;
        let width = self.cfg.kv_width();
        let mut q = Matrix::zeros(x.rows(), width);
        let mut k = Matrix::zeros(x.rows(), width);
        let mut v = Matrix::zeros(x.rows(), width);
        for (h, head) in self.layers[layer].heads.iter().enumerate() {
            let mut qh = x.matmul_reference(&head.wq);
            let mut kh = x.matmul_reference(&head.wk);
            let vh = x.matmul_reference(&head.wv);
            if let Some(table) = &head.rope {
                cb_tensor::rope::apply_rope(&mut qh, table, pos);
                cb_tensor::rope::apply_rope(&mut kh, table, pos);
            }
            q.set_col_block(h * hd, &qh);
            k.set_col_block(h * hd, &kh);
            v.set_col_block(h * hd, &vh);
        }
        (q, k, v)
    }

    /// Multi-head attention of query rows (`q`, at positions `q_pos`)
    /// against the full key/value set (`k_all`/`v_all`, at positions
    /// `k_pos`), causally masked by absolute position. Returns the residual
    /// delta (`q.rows() × d_model`).
    ///
    /// When `probs_out` is provided it receives the attention probabilities
    /// averaged over heads (`q.rows() × k_all.rows()`).
    #[allow(clippy::too_many_arguments)]
    pub fn attend(
        &self,
        layer: usize,
        q: &Matrix,
        q_pos: &[usize],
        k_all: &Matrix,
        v_all: &Matrix,
        k_pos: &[usize],
        probs_out: Option<&mut Matrix>,
    ) -> Matrix {
        let mut delta = Matrix::default();
        let mut scratch = AttendScratch::default();
        self.attend_into(
            layer,
            q,
            q_pos,
            k_all,
            v_all,
            k_pos,
            probs_out,
            &mut delta,
            &mut scratch,
        );
        delta
    }

    /// [`Model::attend`] into caller-provided buffers. Per-head work (score
    /// block, mask/bias, softmax, context, output projection) runs on the
    /// thread pool when large enough; head deltas are reduced serially in
    /// head order, so the result is bit-identical for any pool size.
    #[allow(clippy::too_many_arguments)]
    pub fn attend_into(
        &self,
        layer: usize,
        q: &Matrix,
        q_pos: &[usize],
        k_all: &Matrix,
        v_all: &Matrix,
        k_pos: &[usize],
        mut probs_out: Option<&mut Matrix>,
        delta: &mut Matrix,
        scratch: &mut AttendScratch,
    ) {
        if self.reference_kernels {
            *delta = self.attend_reference(layer, q, q_pos, k_all, v_all, k_pos, probs_out);
            return;
        }
        let hd = self.cfg.head_dim;
        let heads = &self.layers[layer].heads;
        delta.zero_resize(q.rows(), self.cfg.d_model());
        if let Some(p) = probs_out.as_deref_mut() {
            p.zero_resize(q.rows(), k_all.rows());
        }
        scratch.ensure_heads(heads.len());
        scratch.k_pos_f32.clear();
        scratch.k_pos_f32.extend(k_pos.iter().map(|&p| p as f32));
        let k_pos_f32: &[f32] = &scratch.k_pos_f32;
        // The causal-cutoff fast path needs strictly increasing key
        // positions (binary-searchable); every caller in the repo
        // satisfies this, but the general loop remains as the fallback.
        let sorted = k_pos.windows(2).all(|w| w[0] < w[1]);
        let cuts: Option<&[usize]> = if sorted {
            scratch.cuts.clear();
            scratch.cuts.extend(
                q_pos
                    .iter()
                    .map(|&qp| k_pos.partition_point(|&kp| kp <= qp)),
            );
            Some(&scratch.cuts)
        } else {
            None
        };

        let run_head = |h: usize, hs: &mut HeadScratch| {
            let head = &heads[h];
            let (lo, hi) = (h * hd, (h + 1) * hd);
            match cuts {
                Some(c) => {
                    // Masked scores are never computed: row i gets dots
                    // only for keys below its causal cutoff (scale folded
                    // into the store), the tail is exact 0.0 (so the
                    // context product skips it too).
                    q.matmul_transposed_block_limited_into(
                        k_all,
                        lo,
                        hi,
                        c,
                        head.scale,
                        &mut hs.scores,
                    );
                    bias_softmax_sorted(&mut hs.scores, q_pos, k_pos, k_pos_f32, head.bias, c);
                }
                None => {
                    q.matmul_transposed_block_into(k_all, lo, hi, &mut hs.scores);
                    if head.scale != 1.0 {
                        hs.scores.scale(head.scale);
                    }
                    mask_bias_softmax_general(&mut hs.scores, q_pos, k_pos, head.bias);
                }
            }
            hs.scores.matmul_cols_into(v_all, lo, hi, &mut hs.ctx);
            hs.ctx.matmul_into(&head.wo, &mut hs.delta);
        };

        let head_scratch = &mut scratch.heads[..heads.len()];
        // Work-size check first: small (decode-step) attends skip the
        // global pool's RwLock/Arc traffic entirely.
        if heads.len() > 1
            && q.rows() * k_all.rows() >= PAR_ATTEND_WORK
            && pool::current().threads() > 1
        {
            let jobs: Vec<pool::Job<'_>> = head_scratch
                .iter_mut()
                .enumerate()
                .map(|(h, hs)| {
                    let f = &run_head;
                    let job: pool::Job<'_> = Box::new(move || f(h, hs));
                    job
                })
                .collect();
            pool::current().run(jobs);
        } else {
            for (h, hs) in head_scratch.iter_mut().enumerate() {
                run_head(h, hs);
            }
        }

        // Fixed-order reduction keeps the result independent of scheduling.
        let n_heads = heads.len();
        for hs in head_scratch.iter() {
            delta.add_assign(&hs.delta);
            if let Some(p) = probs_out.as_deref_mut() {
                for (dst, &src) in p.as_mut_slice().iter_mut().zip(hs.scores.as_slice()) {
                    *dst += src / n_heads as f32;
                }
            }
        }
    }

    /// The seed's attention (copied per-head column blocks, scalar score
    /// kernel, per-element mask/bias loop) — the scalar baseline.
    #[allow(clippy::too_many_arguments)]
    pub fn attend_reference(
        &self,
        layer: usize,
        q: &Matrix,
        q_pos: &[usize],
        k_all: &Matrix,
        v_all: &Matrix,
        k_pos: &[usize],
        mut probs_out: Option<&mut Matrix>,
    ) -> Matrix {
        let hd = self.cfg.head_dim;
        let mut delta = Matrix::zeros(q.rows(), self.cfg.d_model());
        if let Some(p) = probs_out.as_deref_mut() {
            *p = Matrix::zeros(q.rows(), k_all.rows());
        }
        let n_heads = self.layers[layer].heads.len();
        for (h, head) in self.layers[layer].heads.iter().enumerate() {
            let qh = q.col_block(h * hd, (h + 1) * hd);
            let kh = k_all.col_block(h * hd, (h + 1) * hd);
            let vh = v_all.col_block(h * hd, (h + 1) * hd);
            let mut scores = qh.matmul_transposed_reference(&kh);
            scores.scale(head.scale);
            for (i, &qp) in q_pos.iter().enumerate() {
                let row = scores.row_mut(i);
                for (j, &kp) in k_pos.iter().enumerate() {
                    if kp > qp {
                        row[j] = f32::NEG_INFINITY;
                    } else {
                        row[j] += head.bias.bias(qp, kp);
                    }
                }
                ops::softmax_row(row);
            }
            if let Some(p) = probs_out.as_deref_mut() {
                for (dst, &src) in p.as_mut_slice().iter_mut().zip(scores.as_slice()) {
                    *dst += src / n_heads as f32;
                }
            }
            let ctx = scores.matmul_reference(&vh);
            delta.add_assign(&ctx.matmul_reference(&head.wo));
        }
        delta
    }

    /// The layer's feed-forward residual delta for rows `x`, if any.
    pub fn mlp_delta(&self, layer: usize, x: &Matrix) -> Option<Matrix> {
        if self.reference_kernels {
            self.layers[layer].mlp.forward_reference(x)
        } else {
            self.layers[layer].mlp.forward(x)
        }
    }

    /// Runs the full stack over `tokens` at `positions`, appending their KV
    /// to `cache`, and returns the final residual rows.
    ///
    /// - Prefill: call with an empty cache and positions `0..n`.
    /// - Prefix-cached prefill / full KV reuse: call with the context cache
    ///   already populated and suffix positions following it.
    /// - Decode: call with a single token.
    ///
    /// When `trace` is given, each layer's attention probabilities for these
    /// rows are recorded (mean over heads).
    pub fn forward_rows(
        &self,
        tokens: &[TokenId],
        positions: &[usize],
        cache: &mut KvCache,
        trace: Option<&mut ForwardTrace>,
    ) -> Matrix {
        let mut scratch = Scratch::new();
        self.forward_rows_with(tokens, positions, cache, trace, &mut scratch);
        scratch.x
    }

    /// [`Model::forward_rows`] on a caller-provided [`Scratch`] arena; the
    /// final residual rows are left in `scratch.x`. A loop that keeps the
    /// arena warm (decode, the fusor) allocates nothing per call.
    pub fn forward_rows_with(
        &self,
        tokens: &[TokenId],
        positions: &[usize],
        cache: &mut KvCache,
        mut trace: Option<&mut ForwardTrace>,
        scratch: &mut Scratch,
    ) {
        assert!(!tokens.is_empty(), "forward_rows needs at least one token");
        assert_eq!(tokens.len(), positions.len());
        assert!(
            cache.positions.iter().all(|&p| p < positions[0]),
            "new rows must follow all cached positions"
        );
        if self.reference_kernels {
            scratch.x = self.forward_rows_reference(tokens, positions, cache, trace);
            return;
        }
        self.embed_tokens_into(tokens, &mut scratch.x);
        scratch.k_pos.clear();
        scratch.k_pos.extend_from_slice(&cache.positions);
        scratch.k_pos.extend_from_slice(positions);
        for layer in 0..self.n_layers() {
            self.qkv_into(
                layer,
                &scratch.x,
                positions,
                &mut scratch.q,
                &mut scratch.k,
                &mut scratch.v,
                &mut scratch.fused,
            );
            cache.layers[layer].append(&scratch.k, &scratch.v);
            let mut probs = trace.as_deref_mut().map(|_| Matrix::zeros(0, 0));
            self.attend_into(
                layer,
                &scratch.q,
                positions,
                &cache.layers[layer].k,
                &cache.layers[layer].v,
                &scratch.k_pos,
                probs.as_mut(),
                &mut scratch.delta,
                &mut scratch.attend,
            );
            scratch.x.add_assign(&scratch.delta);
            if self.layers[layer].mlp.forward_into(
                &scratch.x,
                &mut scratch.h1,
                &mut scratch.h2,
                &mut scratch.mlp_out,
            ) {
                scratch.x.add_assign(&scratch.mlp_out);
            }
            if let (Some(t), Some(p)) = (trace.as_deref_mut(), probs) {
                t.attn.push(p);
            }
        }
        cache.positions.extend_from_slice(positions);
        cache.tokens.extend_from_slice(tokens);
    }

    /// The seed's forward pass (reference primitives, copy-on-append
    /// caches) — the scalar baseline measured by the throughput bench.
    fn forward_rows_reference(
        &self,
        tokens: &[TokenId],
        positions: &[usize],
        cache: &mut KvCache,
        mut trace: Option<&mut ForwardTrace>,
    ) -> Matrix {
        let mut x = self.embed_tokens(tokens);
        let mut k_pos: Vec<usize> = cache.positions.clone();
        k_pos.extend_from_slice(positions);
        for layer in 0..self.n_layers() {
            let (q, k, v) = self.qkv_reference(layer, &x, positions);
            cache.layers[layer].append_vcat(&k, &v);
            let mut probs = trace.as_deref_mut().map(|_| Matrix::zeros(0, 0));
            let delta = self.attend_reference(
                layer,
                &q,
                positions,
                &cache.layers[layer].k,
                &cache.layers[layer].v,
                &k_pos,
                probs.as_mut(),
            );
            x.add_assign(&delta);
            if let Some(m) = self.layers[layer].mlp.forward_reference(&x) {
                x.add_assign(&m);
            }
            if let (Some(t), Some(p)) = (trace.as_deref_mut(), probs) {
                t.attn.push(p);
            }
        }
        cache.positions.extend_from_slice(positions);
        cache.tokens.extend_from_slice(tokens);
        x
    }

    /// Full prefill from scratch: returns the populated cache and the final
    /// residual rows.
    pub fn prefill(&self, tokens: &[TokenId]) -> (KvCache, Matrix) {
        let mut cache = self.new_cache();
        let positions: Vec<usize> = (0..tokens.len()).collect();
        let x = self.forward_rows(tokens, &positions, &mut cache, None);
        (cache, x)
    }

    /// Token logits for one residual row.
    pub fn logits(&self, x_row: &[f32]) -> Vec<f32> {
        let mut staging = Matrix::default();
        let mut out = Matrix::default();
        self.logits_into(x_row, &mut staging, &mut out);
        out.as_slice().to_vec()
    }

    /// [`Model::logits`] into caller-provided buffers (`staging` holds the
    /// 1-row residual, `out` the `1 × vocab` logits). The unembedding is
    /// row-sparse for compiled models, so the probed kernel only touches
    /// the answer subspace.
    pub fn logits_into(&self, x_row: &[f32], staging: &mut Matrix, out: &mut Matrix) {
        staging.zero_resize(1, x_row.len());
        staging.row_mut(0).copy_from_slice(x_row);
        if self.reference_kernels {
            *out = staging.matmul_reference(&self.unembed);
        } else {
            staging.matmul_into(&self.unembed, out);
        }
    }

    /// Greedy decode starting from a populated cache whose last row was the
    /// end of the prompt. `last_residual` is the final residual row of the
    /// prompt (as returned by [`Model::forward_rows`]).
    ///
    /// Decoding stops at `max_tokens` or at the first non-[`TokenKind::Value`]
    /// token (answers in the structured vocabulary are value sequences).
    pub fn decode_greedy(
        &self,
        cache: &mut KvCache,
        last_residual: &[f32],
        max_tokens: usize,
    ) -> Vec<TokenId> {
        self.decode_greedy_with(cache, last_residual, max_tokens, &mut |_| {})
    }

    /// [`Model::decode_greedy`] with a per-token callback: `on_token` fires
    /// as each answer token is committed (before its forward pass extends
    /// the cache), which lets callers stream tokens out while decoding.
    pub fn decode_greedy_with(
        &self,
        cache: &mut KvCache,
        last_residual: &[f32],
        max_tokens: usize,
        on_token: &mut dyn FnMut(TokenId),
    ) -> Vec<TokenId> {
        let mut scratch = Scratch::new();
        self.decode_greedy_scratch(cache, last_residual, max_tokens, &mut scratch, on_token)
    }

    /// [`Model::decode_greedy_with`] on a caller-provided arena. Cache and
    /// scratch capacity are reserved up front, so the steady-state loop
    /// performs zero heap allocations per decoded token.
    pub fn decode_greedy_scratch(
        &self,
        cache: &mut KvCache,
        last_residual: &[f32],
        max_tokens: usize,
        scratch: &mut Scratch,
        on_token: &mut dyn FnMut(TokenId),
    ) -> Vec<TokenId> {
        let mut out = Vec::with_capacity(max_tokens);
        cache.reserve(max_tokens);
        scratch.reserve_decode(
            self.cfg.n_heads,
            self.cfg.d_model(),
            self.cfg.kv_width(),
            cache.len() + max_tokens,
        );
        self.logits_into(last_residual, &mut scratch.logits_in, &mut scratch.logits);
        // Position is loop-carried state, derived from the cache exactly
        // once: re-reading `positions.last()` per token would couple every
        // step to whatever else mutates the cache (the batched decode path
        // interleaves many sequences' appends).
        let pos0 = cache.positions.last().map(|&p| p + 1).unwrap_or(0);
        for pos in pos0..pos0 + max_tokens {
            let next = ops::argmax(scratch.logits.row(0)) as TokenId;
            if !matches!(self.cfg.vocab.kind(next), TokenKind::Value(_)) {
                break;
            }
            out.push(next);
            on_token(next);
            self.forward_rows_with(&[next], &[pos], cache, None, scratch);
            self.logits_into(
                scratch.x.row(0),
                &mut scratch.logits_in,
                &mut scratch.logits,
            );
        }
        out
    }

    /// Convenience: full prefill of `prompt` followed by greedy decode.
    pub fn generate(&self, prompt: &[TokenId], max_tokens: usize) -> Vec<TokenId> {
        let (mut cache, x) = self.prefill(prompt);
        let last = x.row(x.rows() - 1).to_vec();
        self.decode_greedy(&mut cache, &last, max_tokens)
    }
}

/// Positional bias + softmax for the sorted fast path: scores arrive with
/// the causal tail already exact-zero (never computed), so only the live
/// prefix `row[..cut]` is touched. [`AttnBias::None`] does nothing, the
/// self/sink gates adjust at most two entries per row (binary search),
/// and the previous-token kernel is one vectorizable pass — where the
/// reference path pays a branchy per-element loop for every head.
fn bias_softmax_sorted(
    scores: &mut Matrix,
    q_pos: &[usize],
    k_pos: &[usize],
    k_pos_f32: &[f32],
    bias: AttnBias,
    cuts: &[usize],
) {
    for (i, (&qp, &cut)) in q_pos.iter().zip(cuts).enumerate() {
        let row = scores.row_mut(i);
        match bias {
            AttnBias::None => {}
            AttnBias::PrevToken { lambda } => {
                let target = qp as f32 - 1.0;
                for (v, &kf) in row[..cut].iter_mut().zip(&k_pos_f32[..cut]) {
                    *v -= lambda * (kf - target).abs();
                }
            }
            AttnBias::ExcludeSelf { penalty } => {
                let at = k_pos.partition_point(|&kp| kp < qp);
                if at < cut && k_pos[at] == qp {
                    row[at] -= penalty;
                }
            }
            AttnBias::LookupGate {
                self_penalty,
                sink_score,
            } => {
                if cut > 0 && k_pos[0] == 0 {
                    row[0] += sink_score;
                }
                let at = k_pos.partition_point(|&kp| kp < qp);
                if at < cut && k_pos[at] == qp {
                    row[at] -= self_penalty;
                }
            }
        }
        ops::softmax_prefix_fast(row, cut);
    }
}

/// The general mask/bias/softmax loop (unsorted key positions).
fn mask_bias_softmax_general(
    scores: &mut Matrix,
    q_pos: &[usize],
    k_pos: &[usize],
    bias: AttnBias,
) {
    for (i, &qp) in q_pos.iter().enumerate() {
        let row = scores.row_mut(i);
        for (j, &kp) in k_pos.iter().enumerate() {
            if kp > qp {
                row[j] = f32::NEG_INFINITY;
            } else {
                row[j] += bias.bias(qp, kp);
            }
        }
        ops::softmax_row(row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelProfile;

    fn tiny() -> Model {
        Model::compiled(ModelConfig::standard(ModelProfile::Tiny, 11))
    }

    #[test]
    fn prefill_populates_every_layer() {
        let m = tiny();
        let v = &m.cfg.vocab;
        let toks = vec![v.id(TokenKind::Bos), v.id(TokenKind::Entity(3))];
        let (cache, x) = m.prefill(&toks);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.n_layers(), m.n_layers());
        for l in &cache.layers {
            assert_eq!(l.len(), 2);
        }
        assert_eq!(x.rows(), 2);
    }

    #[test]
    fn forward_rows_incremental_matches_batch() {
        // Prefilling [a, b, c] at once must equal prefilling [a, b] then
        // extending with [c] (causal attention sees identical K/V sets).
        let m = tiny();
        let v = &m.cfg.vocab;
        let toks = vec![
            v.id(TokenKind::Bos),
            v.id(TokenKind::Entity(1)),
            v.id(TokenKind::Attr(2)),
        ];
        let (cache_full, x_full) = m.prefill(&toks);

        let mut cache_inc = m.new_cache();
        m.forward_rows(&toks[..2], &[0, 1], &mut cache_inc, None);
        let x_last = m.forward_rows(&toks[2..], &[2], &mut cache_inc, None);

        assert_eq!(cache_full.positions, cache_inc.positions);
        for l in 0..m.n_layers() {
            let d = cache_full.layers[l]
                .k
                .frobenius_distance(&cache_inc.layers[l].k);
            assert!(d < 1e-4, "layer {l} K mismatch: {d}");
        }
        let dl = cb_tensor::stats::l2_distance(x_full.row(2), x_last.row(0));
        assert!(dl < 1e-4, "residual mismatch: {dl}");
    }

    #[test]
    fn fused_qkv_matches_reference_per_head_path() {
        // Compiled (program + noise heads, partial RoPE) and pure-noise
        // models across several shapes, against the seed per-head path.
        for model in [
            tiny(),
            Model::random(ModelConfig::standard(ModelProfile::Tiny, 5)),
        ] {
            let v = &model.cfg.vocab;
            let toks: Vec<TokenId> = (0..7).map(|i| v.id(TokenKind::Filler(i % 12))).collect();
            let x = model.embed_tokens(&toks);
            let pos: Vec<usize> = (3..10).collect();
            for layer in 0..model.n_layers() {
                let (q, k, vv) = model.qkv(layer, &x, &pos);
                let (qr, kr, vr) = model.qkv_reference(layer, &x, &pos);
                for (a, b) in [(&q, &qr), (&k, &kr), (&vv, &vr)] {
                    let d = a.frobenius_distance(b);
                    assert!(d < 1e-4, "layer {layer} fused QKV mismatch: {d}");
                }
            }
        }
    }

    #[test]
    fn blocked_attend_matches_reference() {
        let m = tiny();
        let v = &m.cfg.vocab;
        let toks: Vec<TokenId> = vec![
            v.id(TokenKind::Bos),
            v.id(TokenKind::Entity(5)),
            v.id(TokenKind::Attr(0)),
            v.id(TokenKind::Value(1)),
            v.id(TokenKind::Sep),
            v.id(TokenKind::Ref),
        ];
        let (cache, _) = m.prefill(&toks);
        let x = m.embed_tokens(&toks);
        let pos: Vec<usize> = (0..toks.len()).collect();
        for layer in 0..m.n_layers() {
            let (q, _, _) = m.qkv(layer, &x, &pos);
            let lk = &cache.layers[layer];
            let mut probs_fast = Matrix::default();
            let mut probs_ref = Matrix::default();
            let fast = m.attend(layer, &q, &pos, &lk.k, &lk.v, &pos, Some(&mut probs_fast));
            let refr =
                m.attend_reference(layer, &q, &pos, &lk.k, &lk.v, &pos, Some(&mut probs_ref));
            let d = fast.frobenius_distance(&refr);
            assert!(d < 1e-3, "layer {layer} attend mismatch: {d}");
            let dp = probs_fast.frobenius_distance(&probs_ref);
            assert!(dp < 1e-4, "layer {layer} probs mismatch: {dp}");
        }
    }

    #[test]
    fn reference_model_matches_blocked_model_end_to_end() {
        let m = tiny();
        let r = tiny().with_reference_kernels();
        let v = &m.cfg.vocab;
        let toks = vec![
            v.id(TokenKind::Bos),
            v.id(TokenKind::Entity(5)),
            v.id(TokenKind::Attr(0)),
            v.id(TokenKind::Value(1)),
            v.id(TokenKind::Sep),
            v.id(TokenKind::Query),
            v.id(TokenKind::Entity(5)),
            v.id(TokenKind::Attr(0)),
            v.id(TokenKind::QMark),
        ];
        let (cf, xf) = m.prefill(&toks);
        let (cr, xr) = r.prefill(&toks);
        for l in 0..m.n_layers() {
            let d = cf.layers[l].k.frobenius_distance(&cr.layers[l].k)
                + cf.layers[l].v.frobenius_distance(&cr.layers[l].v);
            assert!(d < 1e-3, "layer {l} KV diverges: {d}");
        }
        let dl = cb_tensor::stats::l2_distance(xf.row(xf.rows() - 1), xr.row(xr.rows() - 1));
        assert!(dl < 1e-3, "final residual diverges: {dl}");
        assert_eq!(m.generate(&toks, 4), r.generate(&toks, 4));
    }

    #[test]
    fn scratch_reuse_is_stable_across_calls() {
        // Reusing one arena across forward calls must give the same rows
        // as fresh allocations every time.
        let m = tiny();
        let v = &m.cfg.vocab;
        let toks = [
            v.id(TokenKind::Bos),
            v.id(TokenKind::Entity(1)),
            v.id(TokenKind::Attr(2)),
            v.id(TokenKind::Value(3)),
        ];
        let mut scratch = Scratch::new();
        let mut cache_a = m.new_cache();
        m.forward_rows_with(&toks[..2], &[0, 1], &mut cache_a, None, &mut scratch);
        m.forward_rows_with(&toks[2..3], &[2], &mut cache_a, None, &mut scratch);
        m.forward_rows_with(&toks[3..], &[3], &mut cache_a, None, &mut scratch);
        let reused = scratch.x.clone();

        let mut cache_b = m.new_cache();
        m.forward_rows(&toks[..2], &[0, 1], &mut cache_b, None);
        m.forward_rows(&toks[2..3], &[2], &mut cache_b, None);
        let fresh = m.forward_rows(&toks[3..], &[3], &mut cache_b, None);
        assert_eq!(reused, fresh, "scratch reuse changed the forward result");
        for l in 0..m.n_layers() {
            assert_eq!(cache_a.layers[l], cache_b.layers[l]);
        }
    }

    #[test]
    fn trace_records_one_matrix_per_layer() {
        let m = tiny();
        let v = &m.cfg.vocab;
        let toks = vec![v.id(TokenKind::Bos), v.id(TokenKind::Entity(1))];
        let mut cache = m.new_cache();
        let mut trace = ForwardTrace::default();
        m.forward_rows(&toks, &[0, 1], &mut cache, Some(&mut trace));
        assert_eq!(trace.attn.len(), m.n_layers());
        assert_eq!(trace.attn[0].rows(), 2);
        assert_eq!(trace.attn[0].cols(), 2);
        // Attention rows are probability distributions.
        let s: f32 = trace.attn[0].row(1).iter().sum();
        assert!((s - 1.0).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "must follow all cached positions")]
    fn forward_rows_rejects_out_of_order_positions() {
        let m = tiny();
        let v = &m.cfg.vocab;
        let mut cache = m.new_cache();
        m.forward_rows(&[v.id(TokenKind::Bos)], &[5], &mut cache, None);
        m.forward_rows(&[v.id(TokenKind::Sep)], &[3], &mut cache, None);
    }

    #[test]
    #[should_panic(expected = "at least one token")]
    fn empty_prefill_rejected() {
        let m = tiny();
        let _ = m.prefill(&[]);
    }

    #[test]
    fn decode_with_zero_budget_returns_nothing() {
        let m = tiny();
        let v = &m.cfg.vocab;
        let (mut cache, x) = m.prefill(&[v.id(TokenKind::Bos)]);
        let last = x.row(0).to_vec();
        assert!(m.decode_greedy(&mut cache, &last, 0).is_empty());
    }

    #[test]
    fn random_model_runs_forward() {
        let m = Model::random(ModelConfig::standard(ModelProfile::Tiny, 2));
        let v = &m.cfg.vocab;
        let toks: Vec<_> = (0..8).map(|i| v.id(TokenKind::Filler(i))).collect();
        let (cache, x) = m.prefill(&toks);
        assert_eq!(cache.len(), 8);
        assert!(x.max_abs().is_finite());
    }
}
