//! The engine request lifecycle, end to end: registration misses trigger
//! precompute into the tiered store, repeat requests hit, and the blend the
//! engine serves is statistically identical to a hand-wired `Fusor` run on
//! the same seed.

use cacheblend::blend::engine::{ChunkSource, EngineBuilder, Request};
use cacheblend::blend::fusor::{BlendConfig, Fusor};
use cacheblend::kv::precompute::precompute_chunk;
use cacheblend::model::{Model, ModelConfig, ModelProfile};
use cacheblend::prelude::DeviceKind;
use cacheblend::rag::datasets::{Dataset, DatasetKind};
use cacheblend::tensor::stats::l2_distance;

const SEED: u64 = 11;
const RATIO: f32 = 0.3;

#[test]
fn lifecycle_miss_precompute_hit_blend() {
    let engine = EngineBuilder::new(ModelProfile::Mistral7B)
        .seed(SEED)
        .tier(DeviceKind::CpuRam, 1 << 30)
        .build()
        .unwrap();
    let ds = Dataset::standard(DatasetKind::MusiqueSim, 7);
    let case = &ds.cases[0];
    let ctx = ds.retrieve(case, 6);

    // Registration precomputes each chunk exactly once (store misses →
    // inserts), and the store then holds every entry.
    assert!(engine.store().is_empty());
    let ids = engine.register_chunks(&ds.chunk_tokens(&ctx)).unwrap();
    assert_eq!(engine.store().len(), ids.len());
    let after_register = engine.store().stats();
    assert_eq!(after_register.inserts, ids.len() as u64);

    // First submit: every chunk is a store hit (tier 0), nothing is
    // precomputed again.
    let resp = engine
        .submit(Request::new(ids.clone(), case.query.clone()).ratio(RATIO))
        .unwrap();
    assert!(resp
        .chunk_sources
        .iter()
        .all(|s| matches!(s, ChunkSource::Hit { tier: 0 })));
    assert_eq!(
        engine.store().stats().hits,
        after_register.hits + ids.len() as u64
    );
    assert_eq!(engine.store().stats().inserts, after_register.inserts);

    // Parity with a hand-wired fusor over the same chunk caches: identical
    // per-layer recompute counts, matching residual and answer.
    let model = Model::compiled(ModelConfig::standard(ModelProfile::Mistral7B, SEED));
    let parts: Vec<_> = ctx
        .iter()
        .map(|&i| precompute_chunk(&model, &ds.chunks[i]))
        .collect();
    let fusor = Fusor::new(&model, BlendConfig::with_ratio(RATIO));
    let hand = fusor.blend(parts, &case.query, false);

    assert_eq!(
        resp.blend.stats.selected_per_layer, hand.stats.selected_per_layer,
        "engine and hand-wired fusor recomputed different token counts"
    );
    assert_eq!(resp.blend.stats.ctx_len, hand.stats.ctx_len);
    let d = l2_distance(&resp.blend.last_residual, &hand.last_residual);
    assert!(d < 1e-4, "final residual diverged: {d}");
    // The response cache carries the decoded answer's appended rows; the
    // context+suffix prefix must match the hand-wired blend exactly.
    for l in 0..model.n_layers() {
        let rows = hand.cache.layers[l].k.rows();
        assert_eq!(
            resp.blend.cache.layers[l].k.rows(),
            rows + resp.answer.len(),
            "layer {l}: engine cache should extend the blend by the answer"
        );
        let dk = resp.blend.cache.layers[l]
            .k
            .slice_rows(0, rows)
            .frobenius_distance(&hand.cache.layers[l].k);
        assert!(dk < 1e-4, "layer {l} K diverged: {dk}");
    }
    let mut hand_cache = hand.cache;
    let hand_answer = model.decode_greedy(&mut hand_cache, &hand.last_residual, 8);
    assert_eq!(resp.answer, hand_answer);
}

#[test]
fn eviction_heals_transparently_and_counts_as_precompute() {
    // A store sized for ~2 entries serves 6-chunk requests: most lookups
    // miss, submit re-precomputes from the registry, and answers stay
    // identical to an ample-store engine on the same seed.
    let ds = Dataset::standard(DatasetKind::MusiqueSim, 7);
    let case = &ds.cases[1];
    let ctx = ds.retrieve(case, 6);

    let ample = EngineBuilder::new(ModelProfile::Mistral7B)
        .seed(SEED)
        .build()
        .unwrap();
    let ample_ids = ample.register_chunks(&ds.chunk_tokens(&ctx)).unwrap();
    let want = ample
        .submit(Request::new(ample_ids, case.query.clone()).ratio(RATIO))
        .unwrap();

    let entry = {
        let model = ample.model();
        cacheblend::kv::serialize::encode(&precompute_chunk(model, &ds.chunks[ctx[0]])).len() as u64
    };
    let tiny = EngineBuilder::new(ModelProfile::Mistral7B)
        .seed(SEED)
        .tier(DeviceKind::CpuRam, entry * 5 / 2)
        .build()
        .unwrap();
    let tiny_ids = tiny.register_chunks(&ds.chunk_tokens(&ctx)).unwrap();
    assert!(tiny.store().len() < ctx.len(), "tiny store must evict");

    let got = tiny
        .submit(Request::new(tiny_ids, case.query.clone()).ratio(RATIO))
        .unwrap();
    assert!(got.chunk_sources.contains(&ChunkSource::Precomputed));
    assert!(got.ttft.precompute > std::time::Duration::ZERO);
    assert_eq!(got.answer, want.answer, "eviction must not change answers");
    assert_eq!(
        got.blend.stats.selected_per_layer,
        want.blend.stats.selected_per_layer
    );
}

#[test]
fn submit_is_bit_identical_across_thread_pool_sizes() {
    // Intra-request parallelism (row-range matmul splits, per-head
    // attention jobs) must never change the bytes produced: kernels fix
    // the per-element accumulation order and reduce heads serially. Run
    // the same request under a 1-thread and a 4-thread global pool and
    // compare the serialized fused caches bit for bit.
    let serve = || {
        let engine = EngineBuilder::new(ModelProfile::Mistral7B)
            .seed(SEED)
            .build()
            .unwrap();
        let ds = Dataset::standard(DatasetKind::MusiqueSim, 7);
        let case = &ds.cases[1];
        let ctx = ds.retrieve(case, 4);
        let ids = engine.register_chunks(&ds.chunk_tokens(&ctx)).unwrap();
        let resp = engine
            .submit(Request::new(ids, case.query.clone()).ratio(RATIO))
            .unwrap();
        (
            resp.answer,
            cacheblend::kv::serialize::encode(&resp.blend.cache),
        )
    };
    cacheblend::tensor::pool::set_threads(1);
    let (answer_1, cache_1) = serve();
    cacheblend::tensor::pool::set_threads(4);
    let (answer_4, cache_4) = serve();
    cacheblend::tensor::pool::set_threads(cacheblend::tensor::pool::default_threads());
    assert_eq!(answer_1, answer_4, "answers diverge across pool sizes");
    assert_eq!(
        cache_1.as_ref(),
        cache_4.as_ref(),
        "fused cache bytes diverge across pool sizes"
    );
}
