//! Figure 13: CacheBlend vs the LangChain RAG methods (MapReduce,
//! MapRerank) on Yi-34B.
//!
//! Paper shape: MapReduce is 2–5× slower than CacheBlend with no quality
//! win; MapRerank can be slightly faster but loses badly on quality because
//! chunks are judged in isolation.

use cb_baselines::SchemeKind;
use cb_rag::datasets::{Dataset, DatasetKind};
use cb_storage::device::DeviceKind;
use cb_storage::perf::PaperModel;

use crate::experiments::fig12::{CHUNK_TOKENS, K, RATIO, SUFFIX};
use crate::harness::{scheme_ttft, ExpModel, QualityEval};
use crate::out::{emit, Row};

/// Runs the experiment and emits rows.
pub fn run() {
    let exp = ExpModel::new(PaperModel::Yi34B, 11);
    let schemes = [
        SchemeKind::CacheBlend,
        SchemeKind::MapReduce,
        SchemeKind::MapRerank,
    ];
    let mut rows = Vec::new();
    for kind in DatasetKind::all() {
        let ds = Dataset::standard(kind, 7);
        let mut ev = QualityEval::new(&exp.model);
        for scheme in schemes {
            let q = ev.eval(&ds, scheme, RATIO, K, 20);
            let ttft = scheme_ttft(
                &exp.perf,
                scheme,
                K,
                CHUNK_TOKENS,
                SUFFIX,
                DeviceKind::NvmeSsd,
                RATIO as f64,
            );
            rows.push(
                Row::new("fig13")
                    .col("model", exp.perf.spec.name)
                    .col("dataset", kind.name())
                    .col("metric", kind.metric_name())
                    .col("scheme", scheme.name())
                    .num("quality", q.mean_score)
                    .num("ttft_s", ttft),
            );
        }
    }
    emit("fig13_rag_methods", &rows);
}
