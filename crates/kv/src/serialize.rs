//! Byte serialization of KV caches with section-granular checksums.
//!
//! Device-resident cache entries are stored as bytes; this module defines
//! the (little-endian) wire format and detects corruption on load. Layout
//! (format v2 — the "CBK2" magic):
//!
//! ```text
//! magic u32 | n_layers u32 | rows u32 | width u32
//! positions: rows × u64
//! tokens:    rows × u32
//! header checksum: u64 (word-wise FNV over all preceding bytes)
//! layers:    n_layers × (K rows×width f32, V rows×width f32, layer
//!            checksum u64 over that layer's K+V bytes)
//! ```
//!
//! v1 had a single trailing whole-entry checksum, which forced every
//! consumer to hold the full entry in memory before verifying anything.
//! The v2 *section* checksums let the tiered store stream an entry off
//! disk one layer at a time — each block is verified the moment it
//! arrives, before any of its bytes reach the fusor — so the pipelined
//! loader never trades integrity for overlap. The checksum itself is the
//! workspace-shared word-wise FNV ([`cb_storage::fnv64`]).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use cb_model::{KvCache, LayerKv};
use cb_storage::fnv64;
use cb_tensor::Matrix;

pub(crate) const MAGIC: u32 = 0x4342_4b32; // "CBK2"

/// Bytes of the fixed-size prefix (magic + three dims) — enough to learn
/// an entry's shape and therefore every section offset.
pub const DIMS_LEN: usize = 16;

/// Errors surfaced when decoding a serialized cache entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Buffer too short for the declared sizes.
    Truncated,
    /// Magic number mismatch (not a cache entry).
    BadMagic,
    /// Checksum mismatch (corrupted bytes).
    Corrupted,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "serialized cache truncated"),
            DecodeError::BadMagic => write!(f, "bad magic (not a KV cache entry)"),
            DecodeError::Corrupted => write!(f, "checksum mismatch (corrupted entry)"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// The two on-wire entry encodings. They share the header layout
/// byte-for-byte (only the magic differs), so shape parsing, per-block
/// verification, and layer streaming are one code path dispatching here.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EntryFormat {
    /// Full-precision f32 ("CBK2") — see this module's docs.
    F32,
    /// Per-row symmetric int8 ("CBQ2") — see [`crate::quantize`].
    Quantized,
}

impl EntryFormat {
    /// Bytes of one layer block (K + V + checksum) in this format.
    pub fn layer_block_len(self, rows: usize, width: usize) -> usize {
        match self {
            EntryFormat::F32 => layer_block_len(rows, width),
            EntryFormat::Quantized => crate::quantize::q_layer_block_len(rows, width),
        }
    }

    /// Total bytes of an entry with the given shape in this format.
    pub fn entry_len(self, n_layers: usize, rows: usize, width: usize) -> usize {
        header_len(rows) + n_layers * self.layer_block_len(rows, width)
    }

    /// [`EntryFormat::entry_len`] computed without overflow, for
    /// validating untrusted dims against a trusted payload length.
    pub fn entry_len_u128(self, n_layers: usize, rows: usize, width: usize) -> u128 {
        match self {
            EntryFormat::F32 => entry_len_u128(n_layers, rows, width),
            EntryFormat::Quantized => crate::quantize::q_entry_len_u128(n_layers, rows, width),
        }
    }

    /// Verifies one layer block's checksum and decodes it (dequantizing
    /// if needed) into `out`.
    pub fn decode_layer_block(
        self,
        block: &[u8],
        rows: usize,
        width: usize,
        out: &mut LayerKv,
    ) -> Result<(), DecodeError> {
        match self {
            EntryFormat::F32 => decode_layer_block(block, rows, width, out),
            EntryFormat::Quantized => {
                crate::quantize::decode_quantized_block(block, rows, width, out)
            }
        }
    }
}

/// Identifies an entry's format from its magic (first four bytes).
pub fn sniff_format(prefix: &[u8]) -> Result<EntryFormat, DecodeError> {
    if prefix.len() < 4 {
        return Err(DecodeError::Truncated);
    }
    match u32::from_le_bytes(prefix[0..4].try_into().unwrap()) {
        MAGIC => Ok(EntryFormat::F32),
        crate::quantize::QMAGIC => Ok(EntryFormat::Quantized),
        _ => Err(DecodeError::BadMagic),
    }
}

/// Bytes of the header section (dims + positions + tokens + checksum).
pub fn header_len(rows: usize) -> usize {
    DIMS_LEN + rows * 12 + 8
}

/// Bytes of one layer's block (K + V + checksum).
pub fn layer_block_len(rows: usize, width: usize) -> usize {
    8 * rows * width + 8
}

/// Total bytes of an entry with the given shape.
pub fn entry_len(n_layers: usize, rows: usize, width: usize) -> usize {
    header_len(rows) + n_layers * layer_block_len(rows, width)
}

/// The decoded header of a serialized entry: shape and token metadata,
/// everything the blend planner needs before any layer bytes arrive.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EntryMeta {
    /// Number of layers in the entry.
    pub n_layers: usize,
    /// Cached token count.
    pub rows: usize,
    /// KV width (heads × head dim).
    pub width: usize,
    /// Absolute positions of the cached tokens.
    pub positions: Vec<usize>,
    /// Token ids of the cached tokens.
    pub tokens: Vec<u32>,
}

impl EntryMeta {
    /// Bytes of one layer block in this entry.
    pub fn layer_block_len(&self) -> usize {
        layer_block_len(self.rows, self.width)
    }

    /// Total serialized bytes of this entry.
    pub fn entry_len(&self) -> usize {
        entry_len(self.n_layers, self.rows, self.width)
    }
}

/// Parses the fixed-size dims prefix: `(n_layers, rows, width)` after the
/// magic check. The values are **not yet checksum-verified** — callers
/// sizing buffers from them must bound them against a trusted length
/// (see [`entry_len_u128`]) before allocating.
pub fn parse_dims(prefix: &[u8]) -> Result<(usize, usize, usize), DecodeError> {
    let (format, n_layers, rows, width) = parse_dims_any(prefix)?;
    if format != EntryFormat::F32 {
        return Err(DecodeError::BadMagic);
    }
    Ok((n_layers, rows, width))
}

/// [`parse_dims`] accepting either format: the entry's format plus
/// `(n_layers, rows, width)`. Same caveat — the dims are untrusted until
/// bounded against a known payload length.
pub fn parse_dims_any(prefix: &[u8]) -> Result<(EntryFormat, usize, usize, usize), DecodeError> {
    let format = sniff_format(prefix)?;
    if prefix.len() < DIMS_LEN {
        return Err(DecodeError::Truncated);
    }
    Ok((
        format,
        u32::from_le_bytes(prefix[4..8].try_into().unwrap()) as usize,
        u32::from_le_bytes(prefix[8..12].try_into().unwrap()) as usize,
        u32::from_le_bytes(prefix[12..16].try_into().unwrap()) as usize,
    ))
}

/// [`entry_len`] computed without overflow — for validating *untrusted*
/// dims (each field is a raw u32 off the wire; their product can exceed
/// `usize`) against a known payload length before any allocation.
pub fn entry_len_u128(n_layers: usize, rows: usize, width: usize) -> u128 {
    let block = 8u128 * rows as u128 * width as u128 + 8;
    DIMS_LEN as u128 + rows as u128 * 12 + 8 + n_layers as u128 * block
}

/// Parses and verifies the header section from a byte prefix (at least
/// [`header_len`] bytes for the entry's row count — call with the first
/// [`DIMS_LEN`] bytes' worth of dims already fetched, or just hand in the
/// whole entry).
pub fn parse_header(prefix: &[u8]) -> Result<EntryMeta, DecodeError> {
    let (_, n_layers, rows, width) = parse_dims_any(prefix)?;
    let hlen = header_len(rows);
    if prefix.len() < hlen {
        return Err(DecodeError::Truncated);
    }
    let declared = u64::from_le_bytes(prefix[hlen - 8..hlen].try_into().unwrap());
    if fnv64(&prefix[..hlen - 8]) != declared {
        return Err(DecodeError::Corrupted);
    }
    let mut positions = Vec::with_capacity(rows);
    let mut tokens = Vec::with_capacity(rows);
    let mut off = DIMS_LEN;
    for _ in 0..rows {
        positions.push(u64::from_le_bytes(prefix[off..off + 8].try_into().unwrap()) as usize);
        off += 8;
    }
    for _ in 0..rows {
        tokens.push(u32::from_le_bytes(prefix[off..off + 4].try_into().unwrap()));
        off += 4;
    }
    Ok(EntryMeta {
        n_layers,
        rows,
        width,
        positions,
        tokens,
    })
}

/// Verifies one layer block's checksum and decodes it into `out`.
pub fn decode_layer_block(
    block: &[u8],
    rows: usize,
    width: usize,
    out: &mut LayerKv,
) -> Result<(), DecodeError> {
    let expect = layer_block_len(rows, width);
    if block.len() < expect {
        return Err(DecodeError::Truncated);
    }
    let body = expect - 8;
    let declared = u64::from_le_bytes(block[body..expect].try_into().unwrap());
    if fnv64(&block[..body]) != declared {
        return Err(DecodeError::Corrupted);
    }
    let half = body / 2;
    // Bulk little-endian conversion (chunked from_le_bytes compiles to a
    // plain copy on LE targets) — layer decode sits on the blend's
    // TTFT-critical path.
    let fill = |m: &mut Matrix, lo: usize| {
        // Every element is overwritten by the conversion loop below.
        m.resize_dirty(rows, width);
        for (v, ch) in m
            .as_mut_slice()
            .iter_mut()
            .zip(block[lo..lo + half].chunks_exact(4))
        {
            *v = f32::from_le_bytes(ch.try_into().unwrap());
        }
    };
    fill(&mut out.k, 0);
    fill(&mut out.v, half);
    Ok(())
}

/// Verifies every section checksum of a full serialized entry without
/// materializing the cache — the store runs this on each whole-entry load
/// so no poisoned bytes are ever handed out.
pub fn verify_entry(bytes: &[u8]) -> Result<EntryMeta, DecodeError> {
    let format = sniff_format(bytes)?;
    let meta = parse_header(bytes)?;
    if bytes.len() as u128 != format.entry_len_u128(meta.n_layers, meta.rows, meta.width) {
        return Err(DecodeError::Truncated);
    }
    let block = format.layer_block_len(meta.rows, meta.width);
    let mut off = header_len(meta.rows);
    for _ in 0..meta.n_layers {
        let body = block - 8;
        let declared = u64::from_le_bytes(bytes[off + body..off + block].try_into().unwrap());
        if fnv64(&bytes[off..off + body]) != declared {
            return Err(DecodeError::Corrupted);
        }
        off += block;
    }
    Ok(meta)
}

/// Serializes a cache to bytes (see module docs for the layout).
pub fn encode(cache: &KvCache) -> Bytes {
    let rows = cache.len();
    let width = cache.layers.first().map(|l| l.k.cols()).unwrap_or(0);
    let n_layers = cache.n_layers();
    let mut buf = BytesMut::with_capacity(entry_len(n_layers, rows, width));
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(n_layers as u32);
    buf.put_u32_le(rows as u32);
    buf.put_u32_le(width as u32);
    for &p in &cache.positions {
        buf.put_u64_le(p as u64);
    }
    for &t in &cache.tokens {
        buf.put_u32_le(t);
    }
    let hsum = fnv64(&buf);
    buf.put_u64_le(hsum);
    for layer in &cache.layers {
        let start = buf.len();
        for &x in layer.k.as_slice() {
            buf.put_f32_le(x);
        }
        for &x in layer.v.as_slice() {
            buf.put_f32_le(x);
        }
        let sum = fnv64(&buf[start..]);
        buf.put_u64_le(sum);
    }
    buf.freeze()
}

/// Decodes bytes produced by [`encode`] — or a quantized entry, which is
/// transparently dequantized — verifying every section checksum.
pub fn decode(bytes: Bytes) -> Result<KvCache, DecodeError> {
    let reader = EntryReader::new(bytes)?;
    let mut layers = Vec::with_capacity(reader.n_layers());
    for l in 0..reader.n_layers() {
        layers.push(reader.layer(l)?);
    }
    Ok(KvCache {
        layers,
        positions: reader.meta.positions.clone(),
        tokens: reader.meta.tokens.clone(),
    })
}

/// Random-access reader over an in-memory serialized entry, decoding one
/// layer at a time — the streaming loader fetches layer `i+1` while layer
/// `i` is being recomputed, so it must not pay for a full decode upfront.
/// Each layer's checksum is verified when that layer is decoded.
#[derive(Clone, Debug)]
pub struct EntryReader {
    bytes: Bytes,
    meta: EntryMeta,
    format: EntryFormat,
}

impl EntryReader {
    /// Parses and verifies the header of a serialized entry (either
    /// format, sniffed from the magic) and checks the total length
    /// against the declared shape. Layer blocks are verified lazily by
    /// [`EntryReader::layer_into`].
    pub fn new(bytes: Bytes) -> Result<Self, DecodeError> {
        let format = sniff_format(&bytes)?;
        let meta = parse_header(&bytes)?;
        if bytes.len() as u128 != format.entry_len_u128(meta.n_layers, meta.rows, meta.width) {
            return Err(DecodeError::Truncated);
        }
        Ok(Self {
            bytes,
            meta,
            format,
        })
    }

    /// The entry's wire format.
    pub fn format(&self) -> EntryFormat {
        self.format
    }

    /// The entry's header metadata.
    pub fn meta(&self) -> &EntryMeta {
        &self.meta
    }

    /// Number of layers in the entry.
    pub fn n_layers(&self) -> usize {
        self.meta.n_layers
    }

    /// Cached token count.
    pub fn rows(&self) -> usize {
        self.meta.rows
    }

    /// Absolute positions of the cached tokens.
    pub fn positions(&self) -> &[usize] {
        &self.meta.positions
    }

    /// Token ids of the cached tokens.
    pub fn tokens(&self) -> &[u32] {
        &self.meta.tokens
    }

    /// Size in bytes of one layer's block (K + V + checksum) in the
    /// entry's own format.
    pub fn layer_bytes(&self) -> usize {
        self.format.layer_block_len(self.meta.rows, self.meta.width)
    }

    /// Decodes and verifies layer `l` only.
    ///
    /// # Panics
    ///
    /// Panics if `l >= n_layers()`.
    pub fn layer(&self, l: usize) -> Result<LayerKv, DecodeError> {
        let mut out = LayerKv::empty(self.meta.width);
        self.layer_into(l, &mut out)?;
        Ok(out)
    }

    /// Decodes and verifies layer `l` into a reusable buffer (the
    /// streaming loader decodes every chunk of every layer through one
    /// scratch `LayerKv`).
    ///
    /// # Panics
    ///
    /// Panics if `l >= n_layers()`.
    pub fn layer_into(&self, l: usize, out: &mut LayerKv) -> Result<(), DecodeError> {
        assert!(l < self.meta.n_layers, "layer {l} out of range");
        let block = self.layer_bytes();
        let start = header_len(self.meta.rows) + l * block;
        self.format.decode_layer_block(
            &self.bytes[start..start + block],
            self.meta.rows,
            self.meta.width,
            out,
        )
    }
}

/// Serializes a single layer (used by tests exchanging one layer's KV
/// without full-entry framing).
pub fn encode_layer(layer: &LayerKv) -> Bytes {
    let mut buf = BytesMut::with_capacity(8 + 8 * layer.k.rows() * layer.k.cols());
    buf.put_u32_le(layer.k.rows() as u32);
    buf.put_u32_le(layer.k.cols() as u32);
    for &x in layer.k.as_slice() {
        buf.put_f32_le(x);
    }
    for &x in layer.v.as_slice() {
        buf.put_f32_le(x);
    }
    buf.freeze()
}

/// Decodes a single layer produced by [`encode_layer`].
pub fn decode_layer(mut bytes: Bytes) -> Result<LayerKv, DecodeError> {
    if bytes.len() < 8 {
        return Err(DecodeError::Truncated);
    }
    let rows = bytes.get_u32_le() as usize;
    let width = bytes.get_u32_le() as usize;
    if bytes.remaining() < 2 * rows * width * 4 {
        return Err(DecodeError::Truncated);
    }
    let mut read = |n: usize| {
        let mut d = Vec::with_capacity(n);
        for _ in 0..n {
            d.push(bytes.get_f32_le());
        }
        d
    };
    let k = Matrix::from_vec(rows, width, read(rows * width));
    let v = Matrix::from_vec(rows, width, read(rows * width));
    Ok(LayerKv { k, v })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> KvCache {
        let mut c = KvCache::empty(2, 4);
        for l in 0..2 {
            let k = Matrix::from_fn(3, 4, |r, d| (l * 100 + r * 4 + d) as f32 * 0.5);
            let v = Matrix::from_fn(3, 4, |r, d| -((l * 100 + r * 4 + d) as f32));
            c.layers[l].append(&k, &v);
        }
        c.positions = vec![1, 2, 3];
        c.tokens = vec![10, 11, 12];
        c
    }

    #[test]
    fn roundtrip_is_exact() {
        let c = toy();
        let got = decode(encode(&c)).unwrap();
        assert_eq!(got, c);
    }

    #[test]
    fn empty_cache_roundtrips() {
        let c = KvCache::empty(3, 8);
        let got = decode(encode(&c)).unwrap();
        assert_eq!(got.n_layers(), 3);
        assert!(got.is_empty());
    }

    #[test]
    fn declared_sizes_match_encoding() {
        let c = toy();
        let bytes = encode(&c);
        assert_eq!(bytes.len(), entry_len(2, 3, 4));
        assert_eq!(verify_entry(&bytes).unwrap().rows, 3);
    }

    #[test]
    fn corruption_is_detected_in_any_section() {
        let c = toy();
        let clean = encode(&c).to_vec();
        // Flip one byte in the header, in layer 0, and in layer 1.
        for &at in &[
            6usize,
            header_len(3) + 4,
            header_len(3) + layer_block_len(3, 4) + 4,
        ] {
            let mut bytes = clean.clone();
            bytes[at] ^= 0xFF;
            assert_eq!(
                decode(Bytes::from(bytes.clone())),
                Err(DecodeError::Corrupted),
                "flip at {at} undetected by decode"
            );
            assert_eq!(
                verify_entry(&bytes),
                Err(DecodeError::Corrupted),
                "flip at {at} undetected by verify_entry"
            );
        }
    }

    #[test]
    fn truncation_is_detected() {
        let c = toy();
        let bytes = encode(&c);
        let cut = bytes.slice(0..bytes.len() / 3);
        assert!(matches!(
            decode(cut),
            Err(DecodeError::Truncated | DecodeError::Corrupted)
        ));
    }

    #[test]
    fn bad_magic_detected() {
        let c = toy();
        let mut bytes = encode(&c).to_vec();
        bytes[0] ^= 0x01;
        // The header checksum covers the magic, but after fixing it the
        // magic check must fire on its own.
        let hlen = header_len(3);
        let sum = fnv64(&bytes[..hlen - 8]);
        bytes[hlen - 8..hlen].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(decode(Bytes::from(bytes)), Err(DecodeError::BadMagic));
    }

    #[test]
    fn layer_roundtrip() {
        let c = toy();
        let got = decode_layer(encode_layer(&c.layers[1])).unwrap();
        assert_eq!(got, c.layers[1]);
    }

    #[test]
    fn entry_reader_decodes_layers_independently() {
        let c = toy();
        let r = EntryReader::new(encode(&c)).unwrap();
        assert_eq!(r.n_layers(), 2);
        assert_eq!(r.rows(), 3);
        assert_eq!(r.positions(), &[1, 2, 3]);
        assert_eq!(r.tokens(), &[10, 11, 12]);
        assert_eq!(r.layer(0).unwrap(), c.layers[0]);
        assert_eq!(r.layer(1).unwrap(), c.layers[1]);
    }

    #[test]
    fn entry_reader_detects_layer_corruption_at_decode_time() {
        let c = toy();
        let mut bytes = encode(&c).to_vec();
        // Corrupt layer 1 only: the header parses, layer 0 decodes, and
        // the poisoned layer errors exactly when it is requested.
        let at = header_len(3) + layer_block_len(3, 4) + 4;
        bytes[at] ^= 0xFF;
        let r = EntryReader::new(Bytes::from(bytes)).unwrap();
        assert_eq!(r.layer(0).unwrap(), c.layers[0]);
        assert_eq!(r.layer(1), Err(DecodeError::Corrupted));
    }

    #[test]
    fn entry_reader_detects_header_corruption_upfront() {
        let c = toy();
        let mut bytes = encode(&c).to_vec();
        bytes[DIMS_LEN + 2] ^= 0xFF; // inside positions
        assert_eq!(
            EntryReader::new(Bytes::from(bytes)).err(),
            Some(DecodeError::Corrupted)
        );
    }

    #[test]
    fn parse_header_needs_only_the_header_prefix() {
        let c = toy();
        let bytes = encode(&c);
        let meta = parse_header(&bytes[..header_len(3)]).unwrap();
        assert_eq!(meta.n_layers, 2);
        assert_eq!(meta.tokens, vec![10, 11, 12]);
        assert_eq!(meta.entry_len(), bytes.len());
    }
}
