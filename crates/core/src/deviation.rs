//! KV deviation (Δkv) and attention deviation (Δattn) — Table 1's metrics.
//!
//! - Δkv of token `j` on layer `i`: L2 distance between the given KV and
//!   the fully-recomputed KV at that token/layer. Drives HKVD selection
//!   (§4.3) and Figures 6–8.
//! - Δattn on layer `i`: L2 norm of the difference between forward
//!   attention matrices (suffix queries × context keys). The quantity
//!   selective recompute minimizes (§4.1) and Figure 6's y-axis.

use cb_model::model::ForwardTrace;
use cb_model::{KvCache, LayerKv, Model};
use cb_tensor::stats::l2_distance;
use cb_tokenizer::TokenId;

/// Per-token KV deviation between two layer caches (must have identical
/// shapes): `‖K₁[j] − K₂[j]‖ + ‖V₁[j] − V₂[j]‖`.
pub fn kv_deviation(a: &LayerKv, b: &LayerKv) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "layer caches differ in length");
    (0..a.len())
        .map(|j| l2_distance(a.k.row(j), b.k.row(j)) + l2_distance(a.v.row(j), b.v.row(j)))
        .collect()
}

/// Deviation of a single row pair.
pub fn row_deviation(k_a: &[f32], v_a: &[f32], k_b: &[f32], v_b: &[f32]) -> f32 {
    l2_distance(k_a, k_b) + l2_distance(v_a, v_b)
}

/// Attention deviation: L2 norm of the difference of two (equally shaped)
/// forward attention matrices.
pub fn attn_deviation(a: &cb_tensor::Matrix, b: &cb_tensor::Matrix) -> f32 {
    a.frobenius_distance(b)
}

/// Mean per-layer attention deviation between two traces (Figure 6's
/// y-axis averages across layers).
pub fn trace_deviation(a: &ForwardTrace, b: &ForwardTrace) -> Vec<f32> {
    assert_eq!(a.attn.len(), b.attn.len(), "trace depth mismatch");
    a.attn
        .iter()
        .zip(b.attn.iter())
        .map(|(x, y)| attn_deviation(x, y))
        .collect()
}

/// Oracle per-layer, per-token KV deviation of a *reused* context cache
/// against full recompute of the same token sequence (BOS + chunks).
///
/// `reused` must hold the context at positions `0..len` (BOS included).
/// This is the ground-truth quantity of Figures 7 and 8; CacheBlend itself
/// never computes it (it uses the layer-1 proxy).
pub fn oracle_kv_deviation(model: &Model, reused: &KvCache) -> Vec<Vec<f32>> {
    let tokens: Vec<TokenId> = reused.tokens.clone();
    let positions = reused.positions.clone();
    assert_eq!(positions, (0..tokens.len()).collect::<Vec<_>>());
    let (full, _) = model.prefill(&tokens);
    (0..model.n_layers())
        .map(|l| kv_deviation(&reused.layers[l], &full.layers[l]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_tensor::Matrix;

    fn layer(rows: usize, width: usize, f: impl Fn(usize, usize) -> f32) -> LayerKv {
        let mut l = LayerKv::empty(width);
        let m = Matrix::from_fn(rows, width, &f);
        l.append(&m, &m);
        l
    }

    #[test]
    fn identical_layers_have_zero_deviation() {
        let a = layer(3, 4, |r, c| (r + c) as f32);
        let d = kv_deviation(&a, &a);
        assert!(d.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn deviation_localizes_to_changed_rows() {
        let a = layer(3, 4, |r, c| (r + c) as f32);
        let mut b = a.clone();
        let fresh = Matrix::from_fn(1, 4, |_, _| 100.0);
        b.scatter(&[1], &fresh, &fresh);
        let d = kv_deviation(&a, &b);
        assert_eq!(d[0], 0.0);
        assert!(d[1] > 100.0);
        assert_eq!(d[2], 0.0);
    }

    #[test]
    fn row_deviation_sums_k_and_v_parts() {
        let d = row_deviation(&[0.0, 0.0], &[0.0], &[3.0, 4.0], &[5.0]);
        assert_eq!(d, 10.0);
    }

    #[test]
    fn attn_deviation_is_frobenius() {
        let a = Matrix::from_vec(1, 2, vec![1.0, 0.0]);
        let b = Matrix::from_vec(1, 2, vec![0.0, 0.0]);
        assert_eq!(attn_deviation(&a, &b), 1.0);
    }

    #[test]
    #[should_panic(expected = "differ in length")]
    fn mismatched_layers_panic() {
        let a = layer(3, 4, |_, _| 0.0);
        let b = layer(2, 4, |_, _| 0.0);
        let _ = kv_deviation(&a, &b);
    }
}
