//! The tiered LRU KV cache store.
//!
//! Entries are serialized caches placed on storage tiers (e.g. RAM, then
//! SSD). Within a tier, least-recently-used entries are evicted when an
//! insert needs room; an entry that cannot fit in a tier falls through to
//! the next. Lookup walks tiers in order, so callers learn *which* tier
//! served the hit and can charge the matching load delay from
//! `cb-storage`'s device models.

use std::collections::HashMap;

use bytes::Bytes;
use cb_model::KvCache;
use parking_lot::Mutex;

use crate::chunk::ChunkId;
use crate::serialize::{decode, encode, DecodeError};

/// Configuration of one storage tier.
#[derive(Clone, Debug)]
pub struct TierConfig {
    /// Human-readable label ("cpu-ram", "nvme-ssd", …).
    pub label: String,
    /// Capacity in bytes.
    pub capacity: u64,
}

/// Aggregate store counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Successful inserts.
    pub inserts: u64,
}

#[derive(Debug)]
struct StoredEntry {
    bytes: Bytes,
    last_used: u64,
    size: u64,
}

#[derive(Debug)]
struct TierState {
    cfg: TierConfig,
    used: u64,
    entries: HashMap<ChunkId, StoredEntry>,
}

#[derive(Debug)]
struct Inner {
    tiers: Vec<TierState>,
    clock: u64,
    stats: StoreStats,
    peak_bytes: u64,
}

/// Errors returned by store operations.
#[derive(Debug, PartialEq, Eq)]
pub enum StoreError {
    /// The entry is larger than every tier's total capacity.
    TooLarge {
        /// Size of the rejected entry in bytes.
        size: u64,
    },
    /// The stored bytes failed to decode (corruption).
    Decode(DecodeError),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::TooLarge { size } => {
                write!(f, "entry of {size} bytes exceeds every tier capacity")
            }
            StoreError::Decode(e) => write!(f, "stored entry corrupt: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// A thread-safe tiered LRU store of serialized KV caches.
#[derive(Debug)]
pub struct KvStore {
    inner: Mutex<Inner>,
}

impl KvStore {
    /// Creates a store with the given tiers, fastest first.
    ///
    /// # Panics
    ///
    /// Panics if `tiers` is empty.
    pub fn new(tiers: Vec<TierConfig>) -> Self {
        assert!(!tiers.is_empty(), "store needs at least one tier");
        Self {
            inner: Mutex::new(Inner {
                tiers: tiers
                    .into_iter()
                    .map(|cfg| TierState {
                        cfg,
                        used: 0,
                        entries: HashMap::new(),
                    })
                    .collect(),
                clock: 0,
                stats: StoreStats::default(),
                peak_bytes: 0,
            }),
        }
    }

    /// Convenience: a single-tier store (the paper's default configuration).
    pub fn single(label: &str, capacity: u64) -> Self {
        Self::new(vec![TierConfig {
            label: label.to_string(),
            capacity,
        }])
    }

    /// Inserts (or refreshes) a cache entry. Returns the tier index it
    /// landed on.
    pub fn insert(&self, id: ChunkId, cache: &KvCache) -> Result<usize, StoreError> {
        let bytes = encode(cache);
        self.insert_bytes(id, bytes)
    }

    /// Inserts pre-serialized bytes (used by tests and migration).
    pub fn insert_bytes(&self, id: ChunkId, bytes: Bytes) -> Result<usize, StoreError> {
        let size = bytes.len() as u64;
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let now = inner.clock;
        // Refresh in place if present anywhere.
        for (t, tier) in inner.tiers.iter_mut().enumerate() {
            if let Some(e) = tier.entries.get_mut(&id) {
                e.last_used = now;
                return Ok(t);
            }
        }
        for t in 0..inner.tiers.len() {
            if inner.tiers[t].cfg.capacity < size {
                continue;
            }
            // Evict LRU entries until the new one fits.
            while inner.tiers[t].used + size > inner.tiers[t].cfg.capacity {
                let victim = inner.tiers[t]
                    .entries
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| *k)
                    .expect("over capacity with no entries");
                let gone = inner.tiers[t].entries.remove(&victim).unwrap();
                inner.tiers[t].used -= gone.size;
                inner.stats.evictions += 1;
            }
            inner.tiers[t].used += size;
            inner.tiers[t].entries.insert(
                id,
                StoredEntry {
                    bytes,
                    last_used: now,
                    size,
                },
            );
            inner.stats.inserts += 1;
            let used: u64 = inner.tiers.iter().map(|tier| tier.used).sum();
            inner.peak_bytes = inner.peak_bytes.max(used);
            return Ok(t);
        }
        Err(StoreError::TooLarge { size })
    }

    /// Looks up an entry; on a hit returns the decoded cache and the tier
    /// index that served it, bumping its recency.
    pub fn get(&self, id: ChunkId) -> Result<Option<(KvCache, usize)>, StoreError> {
        match self.get_bytes(id) {
            Some((bytes, tier)) => {
                let cache = decode(bytes).map_err(StoreError::Decode)?;
                Ok(Some((cache, tier)))
            }
            None => Ok(None),
        }
    }

    /// Raw-bytes lookup (the streaming pipeline decodes layer ranges
    /// itself).
    pub fn get_bytes(&self, id: ChunkId) -> Option<(Bytes, usize)> {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let now = inner.clock;
        for t in 0..inner.tiers.len() {
            if let Some(e) = inner.tiers[t].entries.get_mut(&id) {
                e.last_used = now;
                let bytes = e.bytes.clone();
                inner.stats.hits += 1;
                return Some((bytes, t));
            }
        }
        inner.stats.misses += 1;
        None
    }

    /// Removes an entry from whichever tier holds it, reclaiming its
    /// bytes. Returns `true` if an entry was present.
    pub fn remove(&self, id: ChunkId) -> bool {
        let mut inner = self.inner.lock();
        for tier in &mut inner.tiers {
            if let Some(e) = tier.entries.remove(&id) {
                tier.used -= e.size;
                return true;
            }
        }
        false
    }

    /// True if the id is cached on any tier (does not bump recency or
    /// stats).
    pub fn contains(&self, id: ChunkId) -> bool {
        let inner = self.inner.lock();
        inner.tiers.iter().any(|t| t.entries.contains_key(&id))
    }

    /// Number of entries across all tiers.
    pub fn len(&self) -> usize {
        let inner = self.inner.lock();
        inner.tiers.iter().map(|t| t.entries.len()).sum()
    }

    /// True if no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes used on a tier.
    pub fn tier_used(&self, tier: usize) -> u64 {
        self.inner.lock().tiers[tier].used
    }

    /// Bytes used across all tiers.
    pub fn used_bytes(&self) -> u64 {
        let inner = self.inner.lock();
        inner.tiers.iter().map(|t| t.used).sum()
    }

    /// High-water mark of [`KvStore::used_bytes`] over the store's life.
    pub fn peak_bytes(&self) -> u64 {
        self.inner.lock().peak_bytes
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> StoreStats {
        self.inner.lock().stats
    }

    /// Test hook: overwrite an entry's bytes in place (corruption
    /// injection).
    pub fn corrupt(&self, id: ChunkId, flip_byte: usize) -> bool {
        let mut inner = self.inner.lock();
        for tier in &mut inner.tiers {
            if let Some(e) = tier.entries.get_mut(&id) {
                let mut raw = e.bytes.to_vec();
                if raw.is_empty() {
                    return false;
                }
                let idx = flip_byte % raw.len();
                raw[idx] ^= 0xFF;
                e.bytes = Bytes::from(raw);
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_model::LayerKv;
    use cb_tensor::Matrix;

    fn toy_cache(rows: usize, fill: f32) -> KvCache {
        let mut c = KvCache::empty(1, 4);
        let k = Matrix::from_fn(rows, 4, |r, d| fill + (r * 4 + d) as f32);
        c.layers[0] = LayerKv::empty(4);
        c.layers[0].append(&k, &k);
        c.positions = (1..=rows).collect();
        c.tokens = vec![9; rows];
        c
    }

    fn entry_size(rows: usize) -> u64 {
        encode(&toy_cache(rows, 0.0)).len() as u64
    }

    #[test]
    fn insert_then_get_roundtrips() {
        let s = KvStore::single("ram", 1 << 20);
        let c = toy_cache(3, 1.0);
        let tier = s.insert(ChunkId(1), &c).unwrap();
        assert_eq!(tier, 0);
        let (got, t) = s.get(ChunkId(1)).unwrap().unwrap();
        assert_eq!(t, 0);
        assert_eq!(got, c);
        assert_eq!(s.stats().hits, 1);
    }

    #[test]
    fn miss_is_counted() {
        let s = KvStore::single("ram", 1 << 20);
        assert!(s.get(ChunkId(42)).unwrap().is_none());
        assert_eq!(s.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let sz = entry_size(2);
        let s = KvStore::single("ram", 2 * sz);
        s.insert(ChunkId(1), &toy_cache(2, 1.0)).unwrap();
        s.insert(ChunkId(2), &toy_cache(2, 2.0)).unwrap();
        // Touch 1 so 2 becomes LRU.
        let _ = s.get(ChunkId(1));
        s.insert(ChunkId(3), &toy_cache(2, 3.0)).unwrap();
        assert!(s.contains(ChunkId(1)));
        assert!(!s.contains(ChunkId(2)), "LRU entry should be evicted");
        assert!(s.contains(ChunkId(3)));
        assert_eq!(s.stats().evictions, 1);
    }

    #[test]
    fn oversized_entry_falls_through_to_bigger_tier() {
        let small = entry_size(2);
        let s = KvStore::new(vec![
            TierConfig {
                label: "ram".into(),
                capacity: small,
            },
            TierConfig {
                label: "ssd".into(),
                capacity: 100 * small,
            },
        ]);
        let tier = s.insert(ChunkId(7), &toy_cache(10, 0.0)).unwrap();
        assert_eq!(tier, 1, "large entry should land on the SSD tier");
    }

    #[test]
    fn entry_larger_than_everything_is_rejected() {
        let s = KvStore::single("ram", 16);
        let err = s.insert(ChunkId(1), &toy_cache(8, 0.0)).unwrap_err();
        assert!(matches!(err, StoreError::TooLarge { .. }));
    }

    #[test]
    fn reinsert_refreshes_instead_of_duplicating() {
        let s = KvStore::single("ram", 1 << 20);
        s.insert(ChunkId(1), &toy_cache(2, 1.0)).unwrap();
        s.insert(ChunkId(1), &toy_cache(2, 1.0)).unwrap();
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn corruption_is_surfaced_as_decode_error() {
        let s = KvStore::single("ram", 1 << 20);
        s.insert(ChunkId(1), &toy_cache(3, 1.0)).unwrap();
        assert!(s.corrupt(ChunkId(1), 40));
        let err = s.get(ChunkId(1)).unwrap_err();
        assert!(matches!(err, StoreError::Decode(_)));
    }

    #[test]
    fn used_bytes_tracked() {
        let s = KvStore::single("ram", 1 << 20);
        assert_eq!(s.tier_used(0), 0);
        s.insert(ChunkId(1), &toy_cache(2, 1.0)).unwrap();
        assert_eq!(s.tier_used(0), entry_size(2));
    }

    #[test]
    fn remove_reclaims_capacity() {
        let s = KvStore::single("ram", 1 << 20);
        s.insert(ChunkId(1), &toy_cache(2, 1.0)).unwrap();
        assert!(s.tier_used(0) > 0);
        assert!(s.remove(ChunkId(1)));
        assert!(!s.contains(ChunkId(1)));
        assert_eq!(s.tier_used(0), 0);
        assert_eq!(s.len(), 0);
        assert!(!s.remove(ChunkId(1)), "second removal is a no-op");
        assert_eq!(
            s.peak_bytes(),
            entry_size(2),
            "peak survives removal as a high-water mark"
        );
    }
}
