//! The [`Transport`] abstraction: one bidirectional, message-oriented
//! connection between two control-plane endpoints.
//!
//! Two implementations share it:
//!
//! - [`LoopbackTransport`] — a pair of in-process channels carrying
//!   **encoded frame bytes** (not `Message` values), so every loopback
//!   exchange exercises the exact frame + message codec the TCP path
//!   uses. Determinism, failover, and partition tests run on it under
//!   plain `cargo test` with no sockets.
//! - [`crate::tcp::TcpTransport`] — the same frames over a real socket
//!   for multi-process runs.
//!
//! Both ends are `Send + Sync`: the gateway writes from routing and demux
//! threads concurrently, workers write from per-request forwarder
//! threads.

use crate::frame::{decode_frame, encode_frame, FrameError};
use crate::message::{Message, WireError};
use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::Mutex;
use std::time::Duration;

/// Transport-level failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetError {
    /// The peer hung up (or the connection was torn down locally).
    Closed,
    /// No message arrived within the requested timeout.
    Timeout,
    /// A frame failed to decode (corruption on the wire).
    Frame(FrameError),
    /// A frame decoded but its payload did not parse as a message.
    Wire(WireError),
    /// Socket-level failure.
    Io(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Closed => write!(f, "connection closed"),
            NetError::Timeout => write!(f, "receive timed out"),
            NetError::Frame(e) => write!(f, "frame error: {e}"),
            NetError::Wire(e) => write!(f, "wire error: {e}"),
            NetError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<FrameError> for NetError {
    fn from(e: FrameError) -> Self {
        NetError::Frame(e)
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Wire(e)
    }
}

/// One end of a bidirectional message connection.
pub trait Transport: Send + Sync + std::fmt::Debug {
    /// Sends one message. Errors mean the peer is unreachable — the
    /// connection is considered dead.
    fn send(&self, msg: &Message) -> Result<(), NetError>;

    /// Blocks for the next message.
    fn recv(&self) -> Result<Message, NetError>;

    /// Blocks up to `timeout` for the next message. Control loops poll
    /// with this so shutdown flags are observed without peer cooperation.
    fn recv_timeout(&self, timeout: Duration) -> Result<Message, NetError>;

    /// Human-readable peer name for diagnostics.
    fn peer(&self) -> String;
}

/// In-process transport: frames cross a pair of unbounded channels. See
/// the module docs for why bytes (not messages) cross the channel.
#[derive(Debug)]
pub struct LoopbackTransport {
    tx: Mutex<Sender<Vec<u8>>>,
    rx: Mutex<Receiver<Vec<u8>>>,
    name: &'static str,
}

/// Creates a connected pair of loopback endpoints.
pub fn loopback_pair() -> (LoopbackTransport, LoopbackTransport) {
    let (tx_a, rx_b) = channel::unbounded();
    let (tx_b, rx_a) = channel::unbounded();
    (
        LoopbackTransport {
            tx: Mutex::new(tx_a),
            rx: Mutex::new(rx_a),
            name: "loopback-a",
        },
        LoopbackTransport {
            tx: Mutex::new(tx_b),
            rx: Mutex::new(rx_b),
            name: "loopback-b",
        },
    )
}

impl LoopbackTransport {
    fn decode(bytes: Vec<u8>) -> Result<Message, NetError> {
        let (payload, _) = decode_frame(&bytes)?;
        Ok(Message::decode(payload)?)
    }
}

impl Transport for LoopbackTransport {
    fn send(&self, msg: &Message) -> Result<(), NetError> {
        let frame = encode_frame(&msg.encode());
        self.tx
            .lock()
            .unwrap()
            .send(frame)
            .map_err(|_| NetError::Closed)
    }

    fn recv(&self) -> Result<Message, NetError> {
        let bytes = {
            self.rx
                .lock()
                .unwrap()
                .recv()
                .map_err(|_| NetError::Closed)?
        };
        Self::decode(bytes)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Message, NetError> {
        let bytes = {
            self.rx
                .lock()
                .unwrap()
                .recv_timeout(timeout)
                .map_err(|e| match e {
                    RecvTimeoutError::Timeout => NetError::Timeout,
                    RecvTimeoutError::Disconnected => NetError::Closed,
                })?
        };
        Self::decode(bytes)
    }

    fn peer(&self) -> String {
        self.name.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn loopback_roundtrips_messages_across_threads() {
        let (a, b) = loopback_pair();
        let (a, b) = (Arc::new(a), Arc::new(b));
        let b2 = Arc::clone(&b);
        let t = std::thread::spawn(move || {
            for i in 0..50u64 {
                b2.send(&Message::Status { rpc: i }).unwrap();
            }
        });
        for i in 0..50u64 {
            assert_eq!(a.recv().unwrap(), Message::Status { rpc: i });
        }
        t.join().unwrap();
        // Dropping one end closes the other.
        drop(b);
        assert_eq!(a.recv(), Err(NetError::Closed));
        assert_eq!(a.send(&Message::Shutdown), Err(NetError::Closed));
    }

    #[test]
    fn recv_timeout_reports_timeout_on_idle_connection() {
        let (a, _b) = loopback_pair();
        assert_eq!(
            a.recv_timeout(Duration::from_millis(5)),
            Err(NetError::Timeout)
        );
    }
}
