//! Regenerates fig08 (see DESIGN.md §8 and EXPERIMENTS.md).
fn main() {
    cb_bench::experiments::fig08::run();
}
