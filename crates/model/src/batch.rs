//! Continuous (iteration-level) batched greedy decode.
//!
//! [`DecodeBatch`] holds many in-flight sequences — each with its own
//! [`KvCache`], residual row, position counter, and token budget — and
//! advances all of them one token per [`DecodeBatch::step`]. Sequences
//! join ([`DecodeBatch::admit`]) and leave (retire-on-stop or
//! budget exhaustion) *between* steps, vLLM/Orca-style, so a scheduler
//! can keep the batch full under churn.
//!
//! # What is fused, what stays per-sequence
//!
//! Per step, the token-parallel stages run as one multi-row kernel call
//! across every active sequence: embedding, the fused QKV projection
//! (+ per-row RoPE at each sequence's own position), the MLP, and the
//! final logits matmul. Attention cannot fuse — each sequence attends
//! over its own K/V set — so it runs per sequence against that slot's
//! cache, with per-slot scratch; the per-sequence attends are fanned out
//! across the `cb-tensor` thread pool (disjoint slots, fixed output
//! layout, so scheduling order cannot change any byte produced).
//!
//! # Bit-identity to the sequential path
//!
//! Every kernel invoked here accumulates each output element in a fixed
//! reduction order that depends only on that element's input row
//! (`cb-tensor`'s blocked matmul guarantees this for any row count and
//! pool size), and the per-sequence attend is invoked with exactly the
//! arguments the sequential decode loop would pass. So each sequence's
//! token stream and final cache are bit-identical to
//! [`Model::decode_greedy`] run alone, at any batch composition and any
//! thread count — property-tested in this module and in
//! `tests/properties.rs`.
//!
//! One intentional divergence: the sequential loop computes one final
//! (unused) logits row after the last budgeted token; the batch skips
//! that dead matmul. It reads no state and writes only scratch, so
//! nothing observable differs.

use cb_tensor::{ops, pool, Matrix};
use cb_tokenizer::{TokenId, TokenKind};

use crate::kvcache::KvCache;
use crate::model::Model;
use crate::scratch::AttendScratch;

/// Identifies one admitted sequence for the lifetime of the batch.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct SeqId(u64);

impl SeqId {
    /// The raw id (unique per [`DecodeBatch`], monotonically assigned).
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// A retired sequence: its decoded answer tokens and the cache extended
/// with their rows (exactly what [`Model::decode_greedy`] leaves behind).
#[derive(Debug)]
pub struct FinishedSeq {
    /// The KV cache including every decoded token's rows.
    pub cache: KvCache,
    /// The decoded answer tokens, in emission order.
    pub tokens: Vec<TokenId>,
}

/// One in-flight sequence.
struct Slot {
    id: SeqId,
    cache: KvCache,
    /// Key positions for attention: mirrors `cache.positions` plus, during
    /// a step's forward phase, the position of the row being decoded
    /// (`cache.positions` itself is extended only after all layers ran,
    /// matching `forward_rows_with`).
    k_pos: Vec<usize>,
    /// Decoded tokens so far.
    out: Vec<TokenId>,
    /// Tokens this sequence may still emit.
    remaining: usize,
    /// Absolute position of the next decoded row. Tracked per sequence —
    /// never re-derived from a cache that another slot may alias under
    /// retire/compact churn.
    next_pos: usize,
    /// The token selected this step (valid between select and commit).
    pending: TokenId,
    /// Marked for retirement; drained by `take_finished`.
    done: bool,
    // Per-slot attention scratch, so per-sequence attends can run in
    // parallel with no shared mutable state.
    q1: Matrix,
    delta1: Matrix,
    attend: AttendScratch,
}

/// A batch of sequences decoding together; see the module docs.
#[derive(Default)]
pub struct DecodeBatch {
    slots: Vec<Slot>,
    /// Residual rows, `slots.len() × d_model`; row `i` belongs to
    /// `slots[i]` and always holds the residual its next logits row is
    /// computed from.
    x: Matrix,
    next_id: u64,
    /// When set, the per-step stop check (retire on the first
    /// non-[`TokenKind::Value`] token) is skipped and sequences decode to
    /// their full budget. Benchmark-only knob: it diverges from
    /// [`Model::decode_greedy`] semantics by design.
    ignore_stop: bool,
    // Step scratch (reused across steps; steady state allocates only the
    // per-layer job list).
    logits: Matrix,
    fused: Matrix,
    q: Matrix,
    k: Matrix,
    v: Matrix,
    h1: Matrix,
    h2: Matrix,
    mlp_out: Matrix,
    x_next: Matrix,
    admit_row: Matrix,
    tokens_step: Vec<TokenId>,
    positions_step: Vec<usize>,
}

impl DecodeBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// This batch with the stop check disabled (sequences run to their
    /// full budget). For throughput benches that need sustained decode;
    /// see the field docs.
    pub fn without_stop(mut self) -> Self {
        self.ignore_stop = true;
        self
    }

    /// Number of in-flight sequences.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no sequence is in flight.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Admits a prefilled sequence: `cache` holds the prompt's KV,
    /// `last_residual` is the prompt's final residual row (as returned by
    /// [`Model::forward_rows`]), and `max_tokens` bounds the answer
    /// length. The sequence emits its first token on the next
    /// [`DecodeBatch::step`].
    pub fn admit(
        &mut self,
        model: &Model,
        mut cache: KvCache,
        last_residual: &[f32],
        max_tokens: usize,
    ) -> SeqId {
        let d = model.cfg.d_model();
        assert_eq!(last_residual.len(), d, "residual width mismatch");
        assert_eq!(cache.n_layers(), model.n_layers(), "cache layer mismatch");
        if self.x.rows() == 0 {
            self.x.zero_resize(0, d);
        }
        self.admit_row.zero_resize(1, d);
        self.admit_row.row_mut(0).copy_from_slice(last_residual);
        self.x.extend_rows(&self.admit_row);

        cache.reserve(max_tokens);
        let id = SeqId(self.next_id);
        self.next_id += 1;
        self.slots.push(Slot {
            id,
            next_pos: cache.positions.last().map(|&p| p + 1).unwrap_or(0),
            k_pos: cache.positions.clone(),
            cache,
            out: Vec::with_capacity(max_tokens),
            remaining: max_tokens,
            pending: 0,
            done: false,
            q1: Matrix::default(),
            delta1: Matrix::default(),
            attend: AttendScratch::default(),
        });
        id
    }

    /// Advances every in-flight sequence by one token: select (argmax +
    /// stop check) → retire stopped sequences → one fused forward over the
    /// survivors → retire budget-exhausted sequences. `on_token` fires per
    /// emitted token in slot (admission) order, so per-sequence event
    /// streams are deterministic. Returns the sequences retired this step.
    pub fn step(
        &mut self,
        model: &Model,
        on_token: &mut dyn FnMut(SeqId, TokenId),
    ) -> Vec<(SeqId, FinishedSeq)> {
        let mut retired = Vec::new();
        if self.slots.is_empty() {
            return retired;
        }
        let d = model.cfg.d_model();

        // Select: one fused logits matmul over every residual row, then a
        // per-slot argmax. Rows of slots that are out of budget are
        // computed but never read (the sequential loop never argmaxes
        // once its budget is spent).
        if model.reference_kernels {
            self.logits = self.x.matmul_reference(&model.unembed);
        } else {
            self.x.matmul_into(&model.unembed, &mut self.logits);
        }
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if slot.remaining == 0 {
                slot.done = true;
                continue;
            }
            let next = ops::argmax(self.logits.row(i)) as TokenId;
            if !self.ignore_stop && !matches!(model.cfg.vocab.kind(next), TokenKind::Value(_)) {
                slot.done = true;
                continue;
            }
            slot.pending = next;
            slot.out.push(next);
            slot.remaining -= 1;
            on_token(slot.id, next);
        }
        // Stopped sequences retire *without* a forward pass — their cache
        // must not receive the stop token's rows. `x` is rebuilt from the
        // survivors' pending tokens below, so no row compaction is needed
        // here.
        self.take_finished(&mut retired, false);
        if self.slots.is_empty() {
            self.x.zero_resize(0, d);
            return retired;
        }

        // Forward the survivors' pending tokens: fused embed/QKV/MLP
        // across all rows, per-sequence attention fanned out on the pool.
        self.tokens_step.clear();
        self.positions_step.clear();
        for slot in &mut self.slots {
            self.tokens_step.push(slot.pending);
            self.positions_step.push(slot.next_pos);
            slot.k_pos.push(slot.next_pos);
        }
        model.embed_tokens_into(&self.tokens_step, &mut self.x);
        for layer in 0..model.n_layers() {
            model.qkv_into(
                layer,
                &self.x,
                &self.positions_step,
                &mut self.q,
                &mut self.k,
                &mut self.v,
                &mut self.fused,
            );
            let (q, k, v) = (&self.q, &self.k, &self.v);
            // One job per pool worker, each covering a contiguous slot
            // range — a job per *slot* would pay the pool's dispatch
            // barrier per tiny attend, which at high occupancy costs more
            // than the attends themselves (the barrier runs once per
            // layer per step). With one thread this collapses to a single
            // inline job: exactly the sequential attend loop.
            let pool = pool::current();
            let per_job = self.slots.len().div_ceil(pool.threads().max(1));
            let jobs: Vec<pool::Job<'_>> = self
                .slots
                .chunks_mut(per_job)
                .enumerate()
                .map(|(ci, chunk)| {
                    let base = ci * per_job;
                    let job: pool::Job<'_> = Box::new(move || {
                        for (j, slot) in chunk.iter_mut().enumerate() {
                            let i = base + j;
                            slot.q1.zero_resize(1, q.cols());
                            slot.q1.row_mut(0).copy_from_slice(q.row(i));
                            slot.cache.layers[layer].append_rows(k, v, i, i + 1);
                            let q_pos = [slot.next_pos];
                            model.attend_into(
                                layer,
                                &slot.q1,
                                &q_pos,
                                &slot.cache.layers[layer].k,
                                &slot.cache.layers[layer].v,
                                &slot.k_pos,
                                None,
                                &mut slot.delta1,
                                &mut slot.attend,
                            );
                        }
                    });
                    job
                })
                .collect();
            pool.run(jobs);
            for (i, slot) in self.slots.iter().enumerate() {
                for (dst, &src) in self.x.row_mut(i).iter_mut().zip(slot.delta1.row(0)) {
                    *dst += src;
                }
            }
            if model.reference_kernels {
                if let Some(m) = model.layers[layer].mlp.forward_reference(&self.x) {
                    self.x.add_assign(&m);
                }
            } else if model.layers[layer].mlp.forward_into(
                &self.x,
                &mut self.h1,
                &mut self.h2,
                &mut self.mlp_out,
            ) {
                self.x.add_assign(&self.mlp_out);
            }
        }
        for slot in &mut self.slots {
            slot.cache.positions.push(slot.next_pos);
            slot.cache.tokens.push(slot.pending);
            slot.next_pos += 1;
            if slot.remaining == 0 {
                // Budget spent: the final token's rows are in the cache
                // (the sequential loop also forwards its last token);
                // only the dead trailing logits row is skipped.
                slot.done = true;
            }
        }
        self.take_finished(&mut retired, true);
        retired
    }

    /// Decodes every admitted sequence to completion. Returns the finished
    /// sequences in retirement order.
    pub fn run_to_completion(
        &mut self,
        model: &Model,
        on_token: &mut dyn FnMut(SeqId, TokenId),
    ) -> Vec<(SeqId, FinishedSeq)> {
        let mut all = Vec::new();
        while !self.is_empty() {
            all.extend(self.step(model, on_token));
        }
        all
    }

    /// Drains slots marked `done` (preserving admission order of the
    /// rest). With `compact_x`, surviving residual rows are compacted so
    /// row `i` keeps belonging to `slots[i]`; skipped when the caller is
    /// about to rebuild `x` wholesale.
    fn take_finished(&mut self, retired: &mut Vec<(SeqId, FinishedSeq)>, compact_x: bool) {
        if !self.slots.iter().any(|s| s.done) {
            return;
        }
        if compact_x {
            let d = self.x.cols();
            let kept = self.slots.iter().filter(|s| !s.done).count();
            self.x_next.zero_resize(kept, d);
            let mut r = 0;
            for (i, slot) in self.slots.iter().enumerate() {
                if !slot.done {
                    self.x_next.row_mut(r).copy_from_slice(self.x.row(i));
                    r += 1;
                }
            }
            std::mem::swap(&mut self.x, &mut self.x_next);
        }
        let mut i = 0;
        while i < self.slots.len() {
            if self.slots[i].done {
                let slot = self.slots.remove(i);
                retired.push((
                    slot.id,
                    FinishedSeq {
                        cache: slot.cache,
                        tokens: slot.out,
                    },
                ));
            } else {
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ModelConfig, ModelProfile};

    fn tiny() -> Model {
        Model::compiled(ModelConfig::standard(ModelProfile::Tiny, 11))
    }

    /// `[Bos, fact, fact, ..., Query, Entity(e), Attr(a), QMark]` — the
    /// compiled recall program answers with `Value` tokens, so decode
    /// produces a non-empty stream before the stop token.
    fn recall_prompt(model: &Model, facts: &[(u32, u32, u32)], ask: usize) -> Vec<TokenId> {
        let v = &model.cfg.vocab;
        let mut toks = vec![v.id(TokenKind::Bos)];
        for &(e, a, val) in facts {
            toks.extend([
                v.id(TokenKind::Entity(e)),
                v.id(TokenKind::Attr(a)),
                v.id(TokenKind::Value(val)),
                v.id(TokenKind::Sep),
            ]);
        }
        let (e, a, _) = facts[ask];
        toks.extend([
            v.id(TokenKind::Query),
            v.id(TokenKind::Entity(e)),
            v.id(TokenKind::Attr(a)),
            v.id(TokenKind::QMark),
        ]);
        toks
    }

    fn prompts(model: &Model, n: usize) -> Vec<Vec<TokenId>> {
        (0..n)
            .map(|i| {
                let facts: Vec<(u32, u32, u32)> = (0..=(i % 3) + 1)
                    .map(|j| {
                        let j = j as u32;
                        let i = i as u32;
                        ((i * 3 + j) % 16, (i + j) % 8, (i * 5 + j) % 24)
                    })
                    .collect();
                recall_prompt(model, &facts, i % facts.len())
            })
            .collect()
    }

    /// Sequential ground truth for one prompt.
    fn sequential(model: &Model, prompt: &[TokenId], budget: usize) -> (Vec<TokenId>, KvCache) {
        let (mut cache, x) = model.prefill(prompt);
        let last = x.row(x.rows() - 1).to_vec();
        let out = model.decode_greedy(&mut cache, &last, budget);
        (out, cache)
    }

    #[test]
    fn single_sequence_matches_sequential_bit_for_bit() {
        let m = tiny();
        for prompt in prompts(&m, 4) {
            let (want_toks, want_cache) = sequential(&m, &prompt, 8);
            let (cache, x) = m.prefill(&prompt);
            let mut batch = DecodeBatch::new();
            let id = batch.admit(&m, cache, x.row(x.rows() - 1), 8);
            let mut streamed = Vec::new();
            let fin = batch.run_to_completion(&m, &mut |sid, t| {
                assert_eq!(sid, id);
                streamed.push(t);
            });
            assert_eq!(fin.len(), 1);
            assert_eq!(fin[0].1.tokens, want_toks);
            assert_eq!(streamed, want_toks);
            assert_eq!(fin[0].1.cache, want_cache, "cache bytes diverged");
        }
    }

    #[test]
    fn full_batch_matches_sequential_bit_for_bit() {
        let m = tiny();
        let ps = prompts(&m, 8);
        let mut batch = DecodeBatch::new();
        let mut ids = Vec::new();
        for p in &ps {
            let (cache, x) = m.prefill(p);
            ids.push(batch.admit(&m, cache, x.row(x.rows() - 1), 8));
        }
        let fin = batch.run_to_completion(&m, &mut |_, _| {});
        assert_eq!(fin.len(), ps.len());
        for (i, p) in ps.iter().enumerate() {
            let (want_toks, want_cache) = sequential(&m, p, 8);
            let got = fin.iter().find(|(id, _)| *id == ids[i]).unwrap();
            assert_eq!(got.1.tokens, want_toks, "seq {i} tokens diverged");
            assert_eq!(got.1.cache, want_cache, "seq {i} cache diverged");
        }
    }

    #[test]
    fn shuffled_retire_keeps_positions_per_sequence() {
        // Wildly different budgets force retirement in an order unrelated
        // to admission order; surviving slots' positions must not bleed
        // into one another when the batch compacts (the bug this PR fixes
        // in the sequential loop re-derived pos from a shared cache).
        let m = tiny();
        let ps = prompts(&m, 6);
        let budgets = [0usize, 5, 1, 8, 2, 3];
        let mut batch = DecodeBatch::new();
        let mut ids = Vec::new();
        for (p, &b) in ps.iter().zip(&budgets) {
            let (cache, x) = m.prefill(p);
            ids.push(batch.admit(&m, cache, x.row(x.rows() - 1), b));
        }
        let fin = batch.run_to_completion(&m, &mut |_, _| {});
        assert_eq!(fin.len(), ps.len());
        for (i, (p, &b)) in ps.iter().zip(&budgets).enumerate() {
            let (want_toks, want_cache) = sequential(&m, p, b);
            let got = fin.iter().find(|(id, _)| *id == ids[i]).unwrap();
            assert_eq!(got.1.tokens, want_toks, "seq {i} tokens diverged");
            assert_eq!(got.1.cache, want_cache, "seq {i} cache diverged");
        }
    }

    #[test]
    fn mid_flight_admission_matches_sequential() {
        // Sequences join a running batch every step; results must still be
        // independent of their co-tenants.
        let m = tiny();
        let ps = prompts(&m, 7);
        let prefilled: Vec<(KvCache, Vec<f32>)> = ps
            .iter()
            .map(|p| {
                let (c, x) = m.prefill(p);
                let last = x.row(x.rows() - 1).to_vec();
                (c, last)
            })
            .collect();
        let mut batch = DecodeBatch::new();
        let mut ids = Vec::new();
        let mut fin = Vec::new();
        let mut next = 0usize;
        while next < ps.len() || !batch.is_empty() {
            // Admit up to two new sequences between steps.
            for _ in 0..2 {
                if next < ps.len() {
                    let (c, last) = prefilled[next].clone();
                    ids.push(batch.admit(&m, c, &last, 8));
                    next += 1;
                }
            }
            fin.extend(batch.step(&m, &mut |_, _| {}));
        }
        assert_eq!(fin.len(), ps.len());
        for (i, p) in ps.iter().enumerate() {
            let (want_toks, want_cache) = sequential(&m, p, 8);
            let got = fin.iter().find(|(id, _)| *id == ids[i]).unwrap();
            assert_eq!(got.1.tokens, want_toks, "seq {i} tokens diverged");
            assert_eq!(got.1.cache, want_cache, "seq {i} cache diverged");
        }
    }

    #[test]
    fn thread_count_does_not_change_any_byte() {
        let m = tiny();
        let ps = prompts(&m, 6);
        let run = |threads: usize| {
            pool::set_threads(threads);
            let mut batch = DecodeBatch::new();
            let mut ids = Vec::new();
            for p in &ps {
                let (cache, x) = m.prefill(p);
                ids.push(batch.admit(&m, cache, x.row(x.rows() - 1), 8));
            }
            let mut fin = batch.run_to_completion(&m, &mut |_, _| {});
            fin.sort_by_key(|(id, _)| *id);
            fin
        };
        let baseline = run(1);
        for threads in 2..=4 {
            let got = run(threads);
            assert_eq!(got.len(), baseline.len());
            for ((ida, a), (idb, b)) in baseline.iter().zip(&got) {
                assert_eq!(ida, idb);
                assert_eq!(a.tokens, b.tokens, "{threads} threads: tokens diverged");
                assert_eq!(a.cache, b.cache, "{threads} threads: cache diverged");
            }
        }
        pool::set_threads(pool::default_threads());
    }

    #[test]
    fn zero_budget_sequence_retires_without_tokens() {
        let m = tiny();
        let p = &prompts(&m, 1)[0];
        let (cache, x) = m.prefill(p);
        let want = cache.clone();
        let mut batch = DecodeBatch::new();
        let id = batch.admit(&m, cache, x.row(x.rows() - 1), 0);
        let fin = batch.step(&m, &mut |_, _| panic!("no token may be emitted"));
        assert_eq!(fin.len(), 1);
        assert_eq!(fin[0].0, id);
        assert!(fin[0].1.tokens.is_empty());
        assert_eq!(fin[0].1.cache, want, "cache must be untouched");
        assert!(batch.is_empty());
    }

    #[test]
    fn without_stop_decodes_to_full_budget() {
        let m = tiny();
        let p = &prompts(&m, 1)[0];
        let (cache, x) = m.prefill(p);
        let base_len = cache.len();
        let mut batch = DecodeBatch::new().without_stop();
        batch.admit(&m, cache, x.row(x.rows() - 1), 5);
        let fin = batch.run_to_completion(&m, &mut |_, _| {});
        assert_eq!(fin[0].1.tokens.len(), 5);
        assert_eq!(fin[0].1.cache.len(), base_len + 5);
    }

    #[test]
    fn reference_kernels_batch_matches_reference_sequential() {
        let m = tiny().with_reference_kernels();
        let ps = prompts(&m, 3);
        let mut batch = DecodeBatch::new();
        let mut ids = Vec::new();
        for p in &ps {
            let (cache, x) = m.prefill(p);
            ids.push(batch.admit(&m, cache, x.row(x.rows() - 1), 6));
        }
        let fin = batch.run_to_completion(&m, &mut |_, _| {});
        for (i, p) in ps.iter().enumerate() {
            let (want_toks, want_cache) = sequential(&m, p, 6);
            let got = fin.iter().find(|(id, _)| *id == ids[i]).unwrap();
            assert_eq!(got.1.tokens, want_toks, "seq {i} tokens diverged");
            assert_eq!(got.1.cache, want_cache, "seq {i} cache diverged");
        }
    }
}
