//! Network control plane integration: frame-decoder fuzz, loopback-vs-TCP
//! parity, heartbeat-partition failover (with the idempotent-counting
//! regression), and error-detail preservation across the wire.

use cacheblend::kv::chunk::ChunkId;
use cacheblend::net::frame::{
    decode_frame, encode_frame, read_frame, FRAME_VERSION, HEADER_LEN, MAX_FRAME_PAYLOAD,
    TRAILER_LEN,
};
use cacheblend::net::message::{Message, WireEvent, WireFailure, WireRequest};
use cacheblend::net::{
    loopback_pair, Gateway, GatewayConfig, NetClient, TcpTransport, Worker, WorkerConfig,
};
use cacheblend::prelude::*;
use cacheblend::scheduler::ServiceProbe;
use cacheblend::serving::cluster::ClusterService;
use cacheblend::tokenizer::TokenKind::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// The engine-backed tests here time-share one core with heartbeat and
/// demux threads; running them serially keeps the partition test's
/// heartbeat deadlines honest.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

// ---------------------------------------------------------------------------
// Frame / message fuzz
// ---------------------------------------------------------------------------

/// Representative frames covering every encoder code path that carries
/// variable-length data (token vectors, strings, nested structs).
fn fuzz_bases() -> Vec<Vec<u8>> {
    let request = Request::new(vec![ChunkId(7), ChunkId(0xDEAD_BEEF)], vec![1, 2, 3])
        .ratio(0.45)
        .max_new_tokens(4);
    let messages = [
        Message::HelloClient,
        Message::Heartbeat {
            probe: ServiceProbe::default(),
            stats: ServiceStats::default(),
        },
        Message::Submit {
            id: 3,
            blocking: true,
            request: WireRequest::from_request(&request),
        },
        Message::RegisterChunk {
            rpc: 9,
            eager: true,
            tokens: (0..64).collect(),
        },
        Message::Ev {
            id: 12,
            event: WireEvent::Failed(WireFailure::from_error(&EngineError::Storage(
                "injected backend failure".into(),
            ))),
        },
        Message::ClusterStatusReply {
            rpc: 1,
            healthy: vec![true, false, true],
            probes: vec![ServiceProbe::default(); 3],
        },
    ];
    messages.iter().map(|m| encode_frame(&m.encode())).collect()
}

/// Serialize-fuzz for the wire: bit flips, length-field overwrites,
/// truncations, junk extensions, checksum rewrites, and garbage buffers
/// never panic the decoders and never survive as a valid frame —
/// except pure extension, which by design leaves the framed prefix
/// intact (trailing bytes belong to the next frame).
#[test]
fn frame_decoder_survives_mutation_fuzz() {
    let bases = fuzz_bases();
    for seed in [0xCB_0001u64, 0xCB_0002, 0xCB_0003] {
        let mut rng = SmallRng::seed_from_u64(seed);
        for case in 0..1000 {
            let base = &bases[rng.random_range(0usize..bases.len())];
            let mut bytes = base.clone();
            let class = rng.random_range(0u32..6);
            match class {
                // Random distinct-byte flips anywhere in the frame.
                0 => {
                    let flips = rng.random_range(1usize..5);
                    let mut seen = std::collections::HashSet::new();
                    for _ in 0..flips {
                        let at = rng.random_range(0usize..bytes.len());
                        if seen.insert(at) {
                            bytes[at] ^= rng.random_range(1u32..256) as u8;
                        }
                    }
                }
                // Overwrite the payload-length field — the allocation
                // attack surface.
                1 => {
                    let old = u32::from_le_bytes(bytes[6..10].try_into().unwrap());
                    let new = old.wrapping_add(rng.random_range(1u32..u32::MAX));
                    bytes[6..10].copy_from_slice(&new.to_le_bytes());
                }
                // Truncation at a random point.
                2 => {
                    let keep = rng.random_range(0usize..bytes.len());
                    bytes.truncate(keep);
                }
                // Extension with random junk (stream framing must stop at
                // the declared length).
                3 => {
                    let extra = rng.random_range(1usize..64);
                    for _ in 0..extra {
                        bytes.push(rng.random_range(0u32..256) as u8);
                    }
                }
                // Rewrite the checksum trailer.
                4 => {
                    let at = bytes.len() - TRAILER_LEN;
                    let old = u64::from_le_bytes(bytes[at..].try_into().unwrap());
                    let new = old.wrapping_add(rng.random_range(1u64..u64::MAX));
                    bytes[at..].copy_from_slice(&new.to_le_bytes());
                }
                // Short garbage that never saw an encoder.
                _ => {
                    let len = rng.random_range(0usize..64);
                    bytes = (0..len)
                        .map(|_| rng.random_range(0u32..256) as u8)
                        .collect();
                }
            }
            if bytes == *base {
                continue; // Mutation was a no-op (possible only for class 0).
            }

            let slice = decode_frame(&bytes);
            let stream = read_frame(&mut &bytes[..]);
            if class == 3 {
                // Junk after a complete frame is the next frame's problem:
                // both decoders must return exactly the original payload.
                let (payload, consumed) = slice.expect("extended frame keeps its valid prefix");
                assert_eq!(consumed, base.len(), "seed {seed:#x} case {case}");
                assert_eq!(payload, &base[HEADER_LEN..base.len() - TRAILER_LEN]);
                assert_eq!(stream.as_deref(), Ok(payload), "seed {seed:#x} case {case}");
            } else {
                assert!(
                    slice.is_err(),
                    "seed {seed:#x} case {case}: mutated frame decoded"
                );
                assert!(
                    stream.is_err(),
                    "seed {seed:#x} case {case}: mutated stream decoded"
                );
            }

            // Message-level: whatever the mutation did to the payload
            // region, the message decoder must return (never panic or
            // over-allocate). A decode success is acceptable — e.g. a tag
            // flip between two fixed-layout messages — as long as the
            // result re-encodes cleanly.
            if bytes.len() >= HEADER_LEN + TRAILER_LEN {
                let payload = &bytes[HEADER_LEN..bytes.len() - TRAILER_LEN];
                if let Ok(msg) = Message::decode(payload) {
                    let _ = msg.encode();
                }
            }
        }
    }
}

/// A frame claiming a `u32::MAX` (or any oversize) payload is rejected by
/// header validation alone — before any allocation or read.
#[test]
fn oversize_length_claims_are_rejected_without_allocation() {
    for claim in [MAX_FRAME_PAYLOAD as u32 + 1, u32::MAX / 2, u32::MAX] {
        let mut frame = Vec::new();
        frame.extend_from_slice(b"CBNF");
        frame.extend_from_slice(&FRAME_VERSION.to_le_bytes());
        frame.extend_from_slice(&claim.to_le_bytes());
        frame.extend_from_slice(&[0u8; 16]); // Far less than claimed.
        assert!(
            matches!(decode_frame(&frame), Err(e) if format!("{e}").contains(&claim.to_string())),
            "claim {claim} must be rejected as oversize"
        );
        assert!(read_frame(&mut &frame[..]).is_err());
    }
}

// ---------------------------------------------------------------------------
// Loopback vs TCP parity
// ---------------------------------------------------------------------------

fn eval_corpus() -> (Vec<Vec<u32>>, Vec<u32>) {
    let v = cacheblend::tokenizer::Vocab::default_eval();
    let chunks: Vec<Vec<u32>> = (0..8)
        .map(|i| {
            vec![
                v.id(Entity(i as u32)),
                v.id(Attr(i as u32 % 8)),
                v.id(Value(i as u32 * 2)),
                v.id(Sep),
            ]
        })
        .collect();
    let q = vec![v.id(Query), v.id(Entity(3)), v.id(Attr(3)), v.id(QMark)];
    (chunks, q)
}

fn seeded_requests(ids: &[ChunkId], q: &[u32], n: usize) -> Vec<Request> {
    let mut rng = SmallRng::seed_from_u64(0x4E_E7);
    (0..n)
        .map(|_| {
            let k = rng.random_range(1usize..4);
            let set: Vec<_> = (0..k)
                .map(|_| ids[rng.random_range(0usize..ids.len())])
                .collect();
            Request::new(set, q.to_vec())
                .ratio(0.45)
                .max_new_tokens(1 + rng.random_range(0usize..4))
        })
        .collect()
}

fn tiny_service() -> EngineService {
    EngineService::new(
        EngineBuilder::new(ModelProfile::Tiny)
            .seed(11)
            .build()
            .unwrap(),
        ServiceConfig::default().workers(1).queue_capacity(32),
    )
}

/// The same seeded workload served through the in-process loopback facade
/// and through a real TCP gateway + workers + client yields identical
/// results — the transports differ only in plumbing, never in behavior.
#[test]
fn loopback_and_tcp_clusters_serve_identical_results() {
    let _guard = serial();
    let (chunks, q) = eval_corpus();

    // Loopback arm: the `ClusterService` facade.
    let loopback = ClusterService::new(vec![tiny_service(), tiny_service()]);
    let loop_ids = loopback.register_chunks(&chunks).unwrap();

    // TCP arm: gateway and two workers joined over real sockets.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let gateway = Arc::new(Gateway::new(GatewayConfig::default()));
    let acceptor = {
        let gateway = Arc::clone(&gateway);
        std::thread::spawn(move || {
            // Two workers + one client, then the listener closes.
            for stream in listener.incoming().take(3) {
                let t = TcpTransport::from_stream(stream.unwrap()).unwrap();
                gateway.accept(Arc::new(t)).unwrap();
            }
        })
    };
    let _workers: Vec<Worker> = (0..2)
        .map(|_| {
            Worker::start(
                Arc::new(tiny_service()),
                Arc::new(TcpTransport::connect(addr).unwrap()),
                WorkerConfig::default(),
            )
            .unwrap()
        })
        .collect();
    wait_until("both workers attached", || gateway.n_workers() == 2);
    let client = NetClient::connect(Arc::new(TcpTransport::connect(addr).unwrap())).unwrap();
    acceptor.join().unwrap();

    // Content-addressed registration must agree on ids across transports.
    let tcp_ids: Vec<ChunkId> = chunks
        .iter()
        .map(|c| client.register_chunk(c, true).unwrap())
        .collect();
    assert_eq!(
        loop_ids, tcp_ids,
        "chunk ids are content-addressed, transport-independent"
    );

    for (i, req) in seeded_requests(&loop_ids, &q, 12).into_iter().enumerate() {
        let a = loopback.submit(req.clone()).expect("loopback serves");
        let b = client.submit(&req).expect("tcp serves");
        assert_eq!(
            (a.answer, a.recompute_ratio, a.blend.stats.ctx_len),
            (b.answer, b.recompute_ratio, b.blend.stats.ctx_len),
            "request {i} diverged between loopback and TCP"
        );
    }
    let (healthy, probes) = client.cluster_status().unwrap();
    assert_eq!(healthy, vec![true, true]);
    assert_eq!(probes.len(), 2);
}

// ---------------------------------------------------------------------------
// Partition failover
// ---------------------------------------------------------------------------

/// A worker that stops heartbeating is marked down exactly once (the
/// idempotent-failover regression: continued silence and mid-probe
/// recovery must not re-count), new requests route around it without a
/// loss, and a resumed heartbeat restores it.
#[test]
fn heartbeat_partition_fails_over_once_and_loses_no_requests() {
    let _guard = serial();
    let gateway =
        Gateway::new(GatewayConfig::default().heartbeat_timeout(Duration::from_millis(400)));
    let workers: Vec<Worker> = (0..2)
        .map(|_| {
            let (worker_end, gateway_end) = loopback_pair();
            let worker = Worker::start(
                Arc::new(tiny_service()),
                Arc::new(worker_end),
                WorkerConfig::default().heartbeat_interval(Duration::from_millis(20)),
            )
            .unwrap();
            gateway.attach(Arc::new(gateway_end)).unwrap();
            worker
        })
        .collect();
    let (chunks, q) = eval_corpus();
    let ids = gateway.register_chunks(&chunks).unwrap();
    let requests = seeded_requests(&ids, &q, 6);

    // Healthy baseline.
    gateway
        .submit(requests[0].clone())
        .expect("healthy cluster serves");
    assert_eq!(gateway.stats().failovers, 0);

    // Partition worker 0: it keeps serving, the gateway just hears silence.
    workers[0].pause_heartbeats(true);
    wait_until("worker 0 marked down", || !gateway.worker_healthy(0));
    assert_eq!(gateway.stats().failovers, 1, "one down-edge, one failover");

    // The partitioned worker is unreachable for routing but not crashed:
    // work already pinned to it still completes.
    gateway
        .submit_to(0, requests[0].clone())
        .collect()
        .expect("pinned request survives");

    // Regression: continued silence re-observes the same down state every
    // sweep — the counter must not move.
    std::thread::sleep(Duration::from_millis(1200));
    assert_eq!(
        gateway.stats().failovers,
        1,
        "re-observed outage must not re-count"
    );

    // New submissions all route to the healthy worker; none are lost.
    let before = gateway.stats().admissions;
    let streams: Vec<_> = requests
        .iter()
        .map(|r| {
            gateway
                .submit_stream(r.clone())
                .expect("one healthy worker remains")
        })
        .collect();
    for s in streams {
        s.collect().expect("rerouted request serves");
    }
    let after = gateway.stats().admissions;
    assert_eq!(
        after[0], before[0],
        "no admission reaches the partitioned worker"
    );
    assert_eq!(
        after[1],
        before[1] + requests.len() as u64,
        "every request lands on worker 1"
    );

    // Recovery is not a failover.
    workers[0].pause_heartbeats(false);
    wait_until("worker 0 recovered", || gateway.worker_healthy(0));
    assert_eq!(
        gateway.stats().failovers,
        1,
        "recovery must not count as a failover"
    );

    // A second partition is a second edge — counted exactly once more.
    workers[0].pause_heartbeats(true);
    wait_until("worker 0 down again", || !gateway.worker_healthy(0));
    assert_eq!(gateway.stats().failovers, 2);
}

// ---------------------------------------------------------------------------
// Error detail across the wire
// ---------------------------------------------------------------------------

/// An engine-side failure keeps its structured code and detail through
/// the worker → gateway → collect() relay: the offending chunk id of an
/// `UnknownChunk` survives the wire intact.
#[test]
fn error_detail_survives_the_wire() {
    let _guard = serial();
    let cluster = ClusterService::new(vec![tiny_service()]);
    let v = cacheblend::tokenizer::Vocab::default_eval();
    let bogus = ChunkId(0xDEAD_BEEF_CAFE);
    let err = cluster
        .submit(
            Request::new(vec![bogus], vec![v.id(Query), v.id(QMark)])
                .ratio(0.45)
                .max_new_tokens(2),
        )
        .expect_err("unregistered chunk must fail");
    assert_eq!(
        err,
        EngineError::UnknownChunk(bogus),
        "the failing chunk id must survive worker → gateway → client"
    );
}
