//! Microbenchmarks of the tensor kernels the forward pass is built from.

use cb_tensor::ops::{softmax_rows, top_k_indices};
use cb_tensor::rope::{apply_rope, RopeTable};
use cb_tensor::Matrix;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut g = c.benchmark_group("matmul");
    g.sample_size(20);
    for n in [64usize, 128, 224] {
        let a = Matrix::from_fn(n, n, |r, q| ((r * 7 + q) % 13) as f32 * 0.1);
        let b = Matrix::from_fn(n, n, |r, q| ((r * 3 + q) % 11) as f32 * 0.1);
        g.bench_function(format!("{n}x{n}"), |bench| {
            bench.iter(|| black_box(a.matmul(&b)))
        });
        g.bench_function(format!("{n}x{n}_reference"), |bench| {
            bench.iter(|| black_box(a.matmul_reference(&b)))
        });
        g.bench_function(format!("{n}x{n}_transposed"), |bench| {
            bench.iter(|| black_box(a.matmul_transposed(&b)))
        });
        g.bench_function(format!("{n}x{n}_transposed_reference"), |bench| {
            bench.iter(|| black_box(a.matmul_transposed_reference(&b)))
        });
    }
    // The fused-QKV shape, allocation-free (`_into` reuses the buffer).
    let a = Matrix::from_fn(64, 224, |r, q| ((r * 7 + q) % 13) as f32 * 0.1);
    let b = Matrix::from_fn(224, 768, |r, q| ((r * 3 + q) % 11) as f32 * 0.1);
    let mut out = Matrix::default();
    g.bench_function("64x224x768_into", |bench| {
        bench.iter(|| {
            a.matmul_into(&b, &mut out);
            black_box(out.as_slice()[0])
        })
    });
    g.finish();
}

fn bench_softmax(c: &mut Criterion) {
    let mut g = c.benchmark_group("softmax");
    g.sample_size(30);
    for rows in [64usize, 512] {
        g.bench_function(format!("{rows}x512"), |bench| {
            bench.iter_batched(
                || Matrix::from_fn(rows, 512, |r, q| ((r + q) % 31) as f32 * 0.3),
                |mut m| {
                    softmax_rows(&mut m);
                    black_box(m)
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_rope(c: &mut Criterion) {
    let mut g = c.benchmark_group("rope");
    g.sample_size(30);
    let table = RopeTable::new(64, 10000.0);
    let pos: Vec<usize> = (0..512).collect();
    g.bench_function("rotate_512x64", |bench| {
        bench.iter_batched(
            || Matrix::from_fn(512, 64, |r, q| ((r + q) % 17) as f32 * 0.2),
            |mut m| {
                apply_rope(&mut m, &table, &pos);
                black_box(m)
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_topk(c: &mut Criterion) {
    let vals: Vec<f32> = (0..4096)
        .map(|i| ((i * 2654435761u64 as usize) % 977) as f32)
        .collect();
    c.bench_function("top_k_4096_pick_64", |bench| {
        bench.iter(|| black_box(top_k_indices(&vals, 64)))
    });
}

criterion_group!(benches, bench_matmul, bench_softmax, bench_rope, bench_topk);
criterion_main!(benches);
