//! Experiment output: pretty tables on stdout + JSON rows on disk.

use serde::Serialize;
use std::fs;
use std::path::PathBuf;

/// One output row: a flat map of column → value.
#[derive(Clone, Debug, Serialize)]
pub struct Row {
    /// Experiment id, e.g. "fig12".
    pub experiment: String,
    /// Labelled values in column order.
    pub values: Vec<(String, String)>,
}

impl Row {
    /// Starts a row for an experiment.
    pub fn new(experiment: &str) -> Self {
        Self {
            experiment: experiment.to_string(),
            values: Vec::new(),
        }
    }

    /// Adds a string column.
    pub fn col(mut self, name: &str, value: impl ToString) -> Self {
        self.values.push((name.to_string(), value.to_string()));
        self
    }

    /// Adds a float column with 4 digits.
    pub fn num(mut self, name: &str, value: f64) -> Self {
        self.values.push((name.to_string(), format!("{value:.4}")));
        self
    }
}

/// Prints rows as a markdown table and writes them as JSON to
/// `target/experiments/<name>.json`.
pub fn emit(name: &str, rows: &[Row]) {
    if rows.is_empty() {
        println!("({name}: no rows)");
        return;
    }
    // Markdown table.
    let headers: Vec<&str> = rows[0].values.iter().map(|(h, _)| h.as_str()).collect();
    println!("\n## {name}\n");
    println!("| {} |", headers.join(" | "));
    println!(
        "|{}|",
        headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for r in rows {
        let vals: Vec<&str> = r.values.iter().map(|(_, v)| v.as_str()).collect();
        println!("| {} |", vals.join(" | "));
    }
    // JSON sidecar.
    let dir =
        PathBuf::from(std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".to_string()))
            .join("experiments");
    if fs::create_dir_all(&dir).is_ok() {
        let path = dir.join(format!("{name}.json"));
        if let Ok(json) = serde_json::to_string_pretty(rows) {
            let _ = fs::write(&path, json);
            println!("\n(wrote {})", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_builder_orders_columns() {
        let r = Row::new("figX").col("a", 1).num("b", 2.5);
        assert_eq!(r.values[0].0, "a");
        assert_eq!(r.values[1].1, "2.5000");
    }
}
