//! The warm-standby half of gateway survivability: a [`Standby`]
//! subscribes to a primary [`Gateway`](crate::gateway::Gateway)'s
//! replication feed, mirrors everything a takeover needs, and converts
//! itself into a live gateway when the primary dies.
//!
//! ```text
//!   connect ── HelloStandby ──▶ primary
//!      │  ◀── snapshot: roster, chunks, pending journal
//!      │  ◀── live feed: ReplicatePending/Progress/Retire/Chunk/Roster
//!      ▼
//!   MIRRORING ──(roster silence > heartbeat_timeout │ conn closed)──▶
//!   TAKEOVER: Gateway::resume(roster, chunks) — same slot order, so
//!   every rendezvous chunk home is exactly what the old primary
//!   computed; workers re-attach and adopt their placeholder slots.
//! ```
//!
//! The primary re-sends the roster every mirror tick, so the roster
//! stream doubles as its heartbeat: the standby holds the primary to the
//! same silence rule ([`GatewayConfig::heartbeat_timeout`]) the primary
//! holds workers to. A closed connection triggers takeover immediately —
//! a crashed process closes its sockets, and waiting out the window
//! would only add latency.
//!
//! The mirrored pending journal is not re-driven by the new gateway
//! (clients re-submit their in-flight requests themselves when they
//! reconnect, deduplicating the replayed prefix with their own
//! [`ReplayFilter`](cb_core::stream::ReplayFilter)); it is kept so a
//! takeover can report what was orphaned ([`Standby::journal_len`],
//! [`Standby::delivered_tokens`]).

use crate::gateway::{Gateway, GatewayConfig};
use crate::message::{Message, WireRequest};
use crate::transport::{NetError, Transport};
use cb_tokenizer::TokenId;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One mirrored journal entry: the request body plus how much of its
/// answer the primary already delivered.
#[derive(Clone, Debug)]
struct MirroredPending {
    request: WireRequest,
    delivered_tokens: u32,
}

/// A standby gateway mirroring a primary (see module docs). Single
/// owner, single thread: the caller pumps frames ([`Standby::pump_for`])
/// or blocks straight through to takeover ([`Standby::wait_takeover`]).
pub struct Standby {
    conn: Arc<dyn Transport>,
    cfg: GatewayConfig,
    journal: HashMap<u64, MirroredPending>,
    chunks: HashMap<u64, Vec<TokenId>>,
    roster: Vec<(u64, u64)>,
    last_signal: Instant,
    primary_dead: bool,
}

impl std::fmt::Debug for Standby {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Standby")
            .field("roster", &self.roster.len())
            .field("chunks", &self.chunks.len())
            .field("journal", &self.journal.len())
            .field("primary_dead", &self.primary_dead)
            .finish()
    }
}

impl Standby {
    /// Subscribes to the primary over `conn`: sends `HelloStandby` and
    /// returns immediately — the snapshot and live feed are consumed by
    /// [`Standby::pump_for`] / [`Standby::wait_takeover`]. `cfg` is the
    /// configuration the gateway will run with after a takeover; its
    /// `heartbeat_timeout` is also the primary-silence window.
    pub fn connect(conn: Arc<dyn Transport>, cfg: GatewayConfig) -> Result<Standby, NetError> {
        conn.send(&Message::HelloStandby)?;
        Ok(Standby {
            conn,
            cfg,
            journal: HashMap::new(),
            chunks: HashMap::new(),
            roster: Vec::new(),
            last_signal: Instant::now(),
            primary_dead: false,
        })
    }

    fn apply(&mut self, msg: Message) {
        match msg {
            Message::ReplicatePending {
                id,
                request,
                delivered_tokens,
            } => {
                self.journal.insert(
                    id,
                    MirroredPending {
                        request,
                        delivered_tokens,
                    },
                );
            }
            Message::ReplicateProgress {
                id,
                delivered_tokens,
            } => {
                if let Some(p) = self.journal.get_mut(&id) {
                    p.delivered_tokens = delivered_tokens;
                }
            }
            Message::ReplicateRetire { id } => {
                self.journal.remove(&id);
            }
            Message::ReplicateChunk { tokens } => {
                let id = cb_kv::chunk::hash_tokens(&tokens);
                self.chunks.insert(id.0, tokens);
            }
            Message::ReplicateRoster { ids, incarnations } => {
                self.roster = ids.into_iter().zip(incarnations).collect();
            }
            _ => {} // Frames a standby never consumes.
        }
    }

    /// Drains replication frames for (at least) `window` wall time, then
    /// returns. Detects primary death on the way (a closed connection);
    /// use [`Standby::primary_alive`] afterwards. Tests use this to
    /// observe mirror convergence without committing to a takeover.
    pub fn pump_for(&mut self, window: Duration) {
        let deadline = Instant::now() + window;
        while !self.primary_dead {
            let now = Instant::now();
            if now >= deadline {
                return;
            }
            match self.conn.recv_timeout(deadline - now) {
                Ok(msg) => {
                    self.last_signal = Instant::now();
                    self.apply(msg);
                }
                Err(NetError::Timeout) => return,
                Err(_) => self.primary_dead = true,
            }
        }
    }

    /// Whether the primary still shows signs of life: the connection is
    /// up and a frame arrived within the heartbeat window.
    pub fn primary_alive(&self) -> bool {
        !self.primary_dead && self.last_signal.elapsed() <= self.cfg.heartbeat_timeout
    }

    /// Mirrored journal size (in-flight requests the primary owed).
    pub fn journal_len(&self) -> usize {
        self.journal.len()
    }

    /// Answer tokens the primary had delivered for journal entry `id`
    /// (`None` if the entry was retired or never mirrored).
    pub fn delivered_tokens(&self, id: u64) -> Option<u32> {
        self.journal.get(&id).map(|p| p.delivered_tokens)
    }

    /// The mirrored request body for journal entry `id` — what a
    /// takeover reports as orphaned (clients re-drive it themselves on
    /// reconnect).
    pub fn journaled_request(&self, id: u64) -> Option<&WireRequest> {
        self.journal.get(&id).map(|p| &p.request)
    }

    /// Mirrored chunk registry size.
    pub fn n_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Mirrored worker roster: `(id, incarnation)` in slot order.
    pub fn roster(&self) -> &[(u64, u64)] {
        &self.roster
    }

    /// Blocks until the primary dies (connection closed, or roster
    /// silence beyond the heartbeat window), then converts the mirror
    /// into a live [`Gateway`] via [`Gateway::resume`]: same slot order
    /// (chunk homes intact), chunk registry re-seeded, `takeovers = 1`.
    /// Workers re-attach and adopt their placeholder slots; clients
    /// re-submit their in-flight requests on reconnect.
    pub fn wait_takeover(mut self) -> Gateway {
        let tick = (self.cfg.heartbeat_timeout / 4)
            .clamp(Duration::from_millis(5), Duration::from_millis(250));
        while !self.primary_dead {
            match self.conn.recv_timeout(tick) {
                Ok(msg) => {
                    self.last_signal = Instant::now();
                    self.apply(msg);
                }
                Err(NetError::Timeout) => {
                    if self.last_signal.elapsed() > self.cfg.heartbeat_timeout {
                        break; // Silent too long: presumed dead.
                    }
                }
                Err(_) => break, // Connection closed: dead now.
            }
        }
        Gateway::resume(self.cfg, self.roster, self.chunks, 1)
    }
}
