//! Regenerates tab_delay (see DESIGN.md §8 and EXPERIMENTS.md).
fn main() {
    cb_bench::experiments::tab_delay::run();
}
