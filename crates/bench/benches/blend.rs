//! Pipeline benchmarks: eager vs streaming (loader-thread) fusion, and the
//! deviation analyses.

use cb_core::fusor::BlendConfig;
use cb_core::pipeline::{blend_pipelined, blend_sequential, serialize_chunks};
use cb_model::{Model, ModelConfig, ModelProfile};
use cb_rag::datasets::{Dataset, DatasetKind};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn setup() -> (Model, Vec<bytes::Bytes>, Vec<u32>) {
    let model = Model::compiled(ModelConfig::standard(ModelProfile::Mistral7B, 11));
    let ds = Dataset::standard(DatasetKind::MusiqueSim, 7);
    let case = &ds.cases[0];
    let ctx = ds.retrieve(case, 6);
    let chunks = ds.chunk_tokens(&ctx);
    let bytes = serialize_chunks(&model, &chunks);
    (model, bytes, case.query.clone())
}

fn bench_pipeline(c: &mut Criterion) {
    let (model, bytes, query) = setup();
    let cfg = BlendConfig::with_ratio(0.18);
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    // A 2 ms/layer throttle emulating a storage device: the pipelined
    // variant should hide most of it behind recompute.
    let throttle = Some(Duration::from_millis(2));
    g.bench_function("pipelined_throttled", |b| {
        b.iter(|| black_box(blend_pipelined(&model, cfg, bytes.clone(), &query, throttle).unwrap()))
    });
    g.bench_function("sequential_throttled", |b| {
        b.iter(|| {
            black_box(blend_sequential(&model, cfg, bytes.clone(), &query, throttle).unwrap())
        })
    });
    g.bench_function("pipelined_unthrottled", |b| {
        b.iter(|| black_box(blend_pipelined(&model, cfg, bytes.clone(), &query, None).unwrap()))
    });
    g.finish();
}

fn bench_deviation(c: &mut Criterion) {
    let model = Model::compiled(ModelConfig::standard(ModelProfile::Mistral7B, 11));
    let ds = Dataset::standard(DatasetKind::MusiqueSim, 7);
    let case = &ds.cases[0];
    let ctx = ds.retrieve(case, 6);
    let bos = cb_kv::precompute::bos_cache(&model);
    let mut segments = vec![bos];
    let mut cursor = 1;
    for &i in &ctx {
        let mut p = cb_kv::precompute::precompute_chunk(&model, &ds.chunks[i]);
        cb_core::rope_align::relocate(&model, &mut p, cursor);
        cursor += p.len();
        segments.push(p);
    }
    let refs: Vec<&cb_model::KvCache> = segments.iter().collect();
    let reused = cb_model::KvCache::concat(&refs);
    c.bench_function("oracle_kv_deviation", |b| {
        b.iter(|| black_box(cb_core::deviation::oracle_kv_deviation(&model, &reused)))
    });
}

criterion_group!(benches, bench_pipeline, bench_deviation);
criterion_main!(benches);
