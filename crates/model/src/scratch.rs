//! Reusable scratch arenas for the forward pass.
//!
//! Every buffer the hot path writes between two weights lives here, so a
//! caller that keeps one [`Scratch`] alive across calls (the decode loop,
//! the fusor's per-layer loop, an `EngineService` worker) performs **zero
//! steady-state heap allocations**: `Matrix::zero_resize` reuses the
//! backing `Vec` once it has grown to the high-water mark, and
//! [`Scratch::reserve_decode`] pre-grows everything for a decode of known
//! depth so even the warm-up allocations happen before the timed region.
//!
//! Fields are public by design — the borrow checker can split a `&mut
//! Scratch` per field at the call site (`model.qkv_into(.., &mut s.q, &mut
//! s.k, ..)`), which is what lets one arena feed several kernels in a
//! single layer step. Contents between calls are unspecified.

use cb_tensor::Matrix;

/// Per-head attention buffers.
#[derive(Clone, Debug, Default)]
pub struct HeadScratch {
    /// `q_rows × keys` attention scores (probabilities after softmax).
    pub scores: Matrix,
    /// `q_rows × head_dim` context rows.
    pub ctx: Matrix,
    /// `q_rows × d_model` residual delta of this head.
    pub delta: Matrix,
}

impl HeadScratch {
    fn new() -> Self {
        Self {
            scores: Matrix::zeros(0, 0),
            ctx: Matrix::zeros(0, 0),
            delta: Matrix::zeros(0, 0),
        }
    }
}

/// Buffers for one multi-head attention call. Heads are separate so the
/// per-head jobs can run in parallel on disjoint buffers and still reduce
/// into the residual in fixed head order (bit-deterministic for any pool
/// size).
#[derive(Clone, Debug, Default)]
pub struct AttendScratch {
    /// One buffer set per head (grown on demand).
    pub heads: Vec<HeadScratch>,
    /// Key positions as f32 (the relative-bias fast path).
    pub k_pos_f32: Vec<f32>,
    /// Per-query causal cutoffs (first masked key index), shared by all
    /// heads of one attend call.
    pub cuts: Vec<usize>,
}

impl AttendScratch {
    /// Ensures buffers exist for `n` heads.
    pub fn ensure_heads(&mut self, n: usize) {
        while self.heads.len() < n {
            self.heads.push(HeadScratch::new());
        }
    }
}

/// The full forward-pass arena.
#[derive(Clone, Debug, Default)]
pub struct Scratch {
    /// Residual rows (`tokens × d_model`); holds the forward result after
    /// `forward_rows_with`.
    pub x: Matrix,
    /// Fused QKV projection output (`tokens × 3·kv_width`).
    pub fused: Matrix,
    /// Per-layer queries (`tokens × kv_width`).
    pub q: Matrix,
    /// Per-layer keys.
    pub k: Matrix,
    /// Per-layer values.
    pub v: Matrix,
    /// Attention residual delta.
    pub delta: Matrix,
    /// Attention buffers.
    pub attend: AttendScratch,
    /// MLP hidden buffer (gate / first projection).
    pub h1: Matrix,
    /// MLP hidden buffer (up projection).
    pub h2: Matrix,
    /// MLP output delta.
    pub mlp_out: Matrix,
    /// 1-row residual staging for the unembedding.
    pub logits_in: Matrix,
    /// `1 × vocab` logits.
    pub logits: Matrix,
    /// Key positions of the current forward call.
    pub k_pos: Vec<usize>,
}

impl Scratch {
    /// A fresh (empty) arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-grows every buffer for a decode loop over a cache that will
    /// reach `max_keys` tokens on a model with the given shape, so the
    /// steady-state loop allocates nothing at all.
    pub fn reserve_decode(
        &mut self,
        n_heads: usize,
        d_model: usize,
        kv_width: usize,
        max_keys: usize,
    ) {
        self.x.zero_resize(1, d_model);
        self.fused.zero_resize(1, 3 * kv_width);
        self.q.zero_resize(1, kv_width);
        self.k.zero_resize(1, kv_width);
        self.v.zero_resize(1, kv_width);
        self.delta.zero_resize(1, d_model);
        self.attend.ensure_heads(n_heads);
        for hs in &mut self.attend.heads {
            hs.scores.zero_resize(1, max_keys);
            hs.ctx.zero_resize(1, kv_width);
            hs.delta.zero_resize(1, d_model);
        }
        self.attend.k_pos_f32.reserve(max_keys);
        self.k_pos.reserve(max_keys);
    }
}
