//! Regenerates the tiered-storage baseline
//! (`target/experiments/BENCH_storage.json`): pipelined vs unpipelined vs
//! full-prefill TTFT across the device bandwidth grid (chunk KV on a real
//! throttled disk tier), the packed-log vs file-per-chunk layout sweep,
//! and the quantized cold-tier footprint/deviation arm. See
//! `experiments::storage`.
//!
//! Flags:
//!
//! - `--smoke` — shrunken sizes/repetitions (seconds, for CI).
//! - `--dir <path>` — root for the throwaway cache dirs (tempdir default).
//!
//! The full (non-smoke) run asserts the acceptance claims at these shapes:
//!
//! - §5.2 pipelining: on the Standard profile the pipeline must hide at
//!   least half of the measured raw disk load time on its best device.
//! - The packed log must beat file-per-chunk on the 10⁴-chunk
//!   register/load sweep on *both* wall-clock and syscall count.
//! - The int8 cold tier must shrink the on-disk footprint ≥ 3.5× while
//!   keeping the blend-output deviation CDF bounded.

use cb_bench::experiments::storage::{run_opts, StorageOpts};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let dir = args
        .iter()
        .position(|a| a == "--dir")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from);
    let out = run_opts(StorageOpts { smoke, dir });
    if smoke {
        return;
    }
    assert!(
        out.hidden_frac >= 0.5,
        "pipeline hid only {:.0}% of raw disk load time (need ≥ 50%)",
        out.hidden_frac * 100.0
    );
    let (file, packed) = (out.layout.file_per_chunk, out.layout.packed_log);
    assert!(
        packed.register_s + packed.load_s < file.register_s + file.load_s,
        "packed log must beat file-per-chunk on wall-clock \
         ({:.0} ms vs {:.0} ms over {} chunks)",
        (packed.register_s + packed.load_s) * 1e3,
        (file.register_s + file.load_s) * 1e3,
        out.layout.chunks
    );
    assert!(
        packed.syscalls < file.syscalls,
        "packed log must beat file-per-chunk on syscalls ({} vs {})",
        packed.syscalls,
        file.syscalls
    );
    assert!(
        out.layout.compact_reclaimed_frac >= 0.9,
        "compaction reclaimed only {:.0}% of dead bytes (need ≥ 90%)",
        out.layout.compact_reclaimed_frac * 100.0
    );
    assert!(
        out.quantized.footprint_ratio >= 3.5,
        "quantized tier shrank the footprint only {:.2}x (need ≥ 3.5x)",
        out.quantized.footprint_ratio
    );
    assert!(
        out.quantized.deviation_max < 0.25,
        "quantized blend deviated up to {:.3} of the exact output's \
         max-abs (need < 0.25)",
        out.quantized.deviation_max
    );
}
