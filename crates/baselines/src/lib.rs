//! The baselines CacheBlend is evaluated against (§7.1).
//!
//! - [`full_recompute`] — prefill everything (the quality gold standard).
//! - [`prefix_caching`] — vLLM/SGLang-style block-hash prefix reuse: exact
//!   quality, but only the leading cached blocks save compute.
//! - [`full_reuse`] — PromptCache-style concatenation of independently
//!   precomputed chunk caches with positional correction but *no*
//!   recompute: fastest, loses cross-attention.
//! - [`rag_methods`] — LangChain's MapReduce and MapRerank chains, which
//!   sidestep multi-chunk prefill by processing chunks independently.
//!
//! Each runner returns the generated answer plus the accounting the bench
//! harness feeds into `cb-storage`'s delay model.

pub mod full_recompute;
pub mod full_reuse;
pub mod prefix_caching;
pub mod rag_methods;

pub use full_recompute::run_full_recompute;
pub use full_reuse::run_full_reuse;
pub use prefix_caching::PrefixCachingEngine;
pub use rag_methods::{run_map_reduce, run_map_rerank};

/// The execution schemes compared across the evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// Full prefill, no reuse.
    FullRecompute,
    /// Prefix caching (RAM, idealized free loads — the paper's assumption).
    PrefixCaching,
    /// Full KV reuse (PromptCache).
    FullReuse,
    /// CacheBlend (selective recompute, the paper's system).
    CacheBlend,
    /// LangChain MapReduce.
    MapReduce,
    /// LangChain MapRerank.
    MapRerank,
}

impl SchemeKind {
    /// Display name matching the paper's legends.
    pub fn name(self) -> &'static str {
        match self {
            SchemeKind::FullRecompute => "Full KV recompute",
            SchemeKind::PrefixCaching => "Prefix caching",
            SchemeKind::FullReuse => "Full KV reuse",
            SchemeKind::CacheBlend => "CacheBlend",
            SchemeKind::MapReduce => "MapReduce",
            SchemeKind::MapRerank => "MapRerank",
        }
    }
}
