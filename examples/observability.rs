//! Watching a cluster run: the `cb-obs` metrics registry and per-request
//! span timelines, end to end in one process.
//!
//! Builds a two-replica [`ClusterService`], serves a handful of traced
//! requests, then:
//!
//! 1. scrapes the cluster-aggregated metrics registry (the same
//!    [`MetricsSnapshot`] a remote `NetClient::scrape()` or `cb_top`
//!    sees) and prints the Prometheus text rendering, and
//! 2. exports every span the run recorded as `chrome://tracing` JSON —
//!    open the file in `chrome://tracing` or <https://ui.perfetto.dev>
//!    to see each request's admit → queue → blend → decode timeline.
//!
//! Run with: `cargo run --release --example observability`
//!
//! [`MetricsSnapshot`]: cacheblend::obs::metrics::MetricsSnapshot

use cacheblend::obs::trace::{chrome_trace_json, Tracer};
use cacheblend::prelude::*;
use cacheblend::tokenizer::TokenKind::*;

fn main() {
    // Start the span ring fresh so the export holds exactly this run.
    Tracer::global().clear();

    let cluster = ClusterService::build(
        2,
        ServiceConfig::default().workers(1).queue_capacity(8),
        |_| EngineBuilder::new(ModelProfile::Tiny).seed(11).build(),
    )
    .expect("cluster builds");
    let v = cluster.replica(0).engine().model().cfg.vocab.clone();

    let chunks: Vec<Vec<u32>> = (0..6)
        .map(|i| {
            vec![
                v.id(Entity(i as u32)),
                v.id(Attr(i as u32 % 8)),
                v.id(Value(i as u32 * 2)),
                v.id(Sep),
            ]
        })
        .collect();
    let ids = cluster.register_chunks(&chunks).unwrap();

    // Traced requests: a nonzero trace id makes every phase the request
    // passes through — gateway placement, queue wait, the blend's
    // fetch/recompute, each decode step — record a span on one timeline.
    let query = vec![v.id(Query), v.id(Entity(2)), v.id(Attr(2)), v.id(QMark)];
    for round in 0..8u64 {
        let set = vec![ids[(round % 6) as usize], ids[((round + 3) % 6) as usize]];
        let resp = cluster
            .submit(
                Request::new(set, query.clone())
                    .ratio(0.45)
                    .max_new_tokens(4)
                    .trace(0xB10B_0000 + round, 0),
            )
            .expect("request serves");
        println!(
            "round {round}: {} tokens, ttft {:?}",
            resp.answer.len(),
            resp.ttft.total
        );
    }

    // The scrape: worker stores and the gateway publish their stats into
    // the process-global registry; the snapshot is instance-deduplicated
    // and mergeable across machines.
    let snap = cluster.scrape();
    println!("\n--- prometheus exposition (what `cb_top` polls) ---");
    print!("{}", snap.to_prometheus());

    let completed = snap.counter("cb_requests_completed_total").unwrap_or(0);
    let ttft = snap.hist("cb_ttft_seconds").expect("ttft histogram");
    println!("--- highlights ---");
    println!("completed: {completed}");
    println!(
        "ttft p50 {:.3} ms, p99 {:.3} ms over {} samples",
        ttft.quantile_seconds(0.50) * 1e3,
        ttft.quantile_seconds(0.99) * 1e3,
        ttft.count,
    );

    // The timeline: every recorded span, as chrome://tracing JSON.
    let spans = Tracer::global().drain();
    let path = std::env::temp_dir().join("cb_observability_trace.json");
    std::fs::write(&path, chrome_trace_json(&spans)).expect("trace file writes");
    println!(
        "\nwrote {} spans to {} — load it in chrome://tracing",
        spans.len(),
        path.display()
    );
}
