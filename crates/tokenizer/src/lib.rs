//! Structured vocabulary and deterministic token codes.
//!
//! The reproduction replaces a learned BPE tokenizer with a *structured*
//! vocabulary whose tokens have explicit roles (entities, attributes,
//! values, coreference markers, filler words, control tokens). The synthetic
//! datasets in `cb-rag` emit token streams over this vocabulary, and the
//! compiled transformer program in `cb-model` recognizes token roles through
//! class-indicator embedding dimensions.
//!
//! Modules:
//!
//! - [`vocab`] — the [`vocab::Vocab`] table, [`vocab::TokenKind`] roles, and
//!   text rendering.
//! - [`codes`] — deterministic ±1 identity codes with concentration
//!   guarantees (the "random feature" embedding of token identity).

pub mod codes;
pub mod vocab;

pub use vocab::{TokenId, TokenKind, Vocab};
