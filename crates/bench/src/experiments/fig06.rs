//! Figure 6: forward attention deviation vs recompute ratio, three models.
//!
//! Paper shape: Δattn falls as the ratio grows, with the steepest drop from
//! recomputing the first few (highest-KV-deviation) tokens; recomputing
//! *random* tokens at the same budget decays far slower — that contrast is
//! the HKVD ablation.

use cb_core::fusor::{BlendConfig, Fusor, Selection};
use cb_model::model::ForwardTrace;
use cb_model::Model;
use cb_rag::datasets::{Dataset, DatasetKind};
use cb_tokenizer::TokenId;

use crate::harness::{ExpModel, QualityEval};
use crate::out::{emit, Row};

/// Suffix attention of a *full prefill* over BOS + chunks + query.
fn full_trace(model: &Model, chunks: &[Vec<TokenId>], query: &[TokenId]) -> ForwardTrace {
    let mut toks = vec![model.cfg.vocab.id(cb_tokenizer::TokenKind::Bos)];
    for c in chunks {
        toks.extend_from_slice(c);
    }
    toks.extend_from_slice(query);
    let mut cache = model.new_cache();
    let positions: Vec<usize> = (0..toks.len()).collect();
    let mut trace = ForwardTrace::default();
    model.forward_rows(&toks, &positions, &mut cache, Some(&mut trace));
    // Keep only the suffix (query) rows of every layer.
    let s = query.len();
    for a in &mut trace.attn {
        *a = a.slice_rows(a.rows() - s, a.rows());
    }
    trace
}

/// Mean-over-layers Δattn of one blended case vs full prefill.
fn case_deviation(
    model: &Model,
    ev: &mut QualityEval,
    ds: &Dataset,
    case_idx: usize,
    ratio: f32,
    selection: Selection,
) -> f32 {
    let case = &ds.cases[case_idx];
    let ctx = ds.retrieve(case, 6);
    let chunks = ds.chunk_tokens(&ctx);
    let reference = full_trace(model, &chunks, &case.query);
    let parts: Vec<_> = ctx.iter().map(|&i| ev.chunk_cache(ds, i)).collect();
    let cfg = BlendConfig {
        recompute_ratio: ratio,
        gamma: 0.3,
        selection,
    };
    let out = Fusor::new(model, cfg).blend(parts, &case.query, true);
    let devs = cb_core::deviation::trace_deviation(&out.trace.unwrap(), &reference);
    cb_tensor::stats::mean(&devs)
}

/// Runs the experiment and emits rows.
pub fn run() {
    let mut rows = Vec::new();
    for exp in ExpModel::evaluation_models(11) {
        let ds = Dataset::standard(DatasetKind::MusiqueSim, 7);
        let mut ev = QualityEval::new(&exp.model);
        for ratio in [0.0f32, 0.05, 0.10, 0.15, 0.20, 0.30, 0.50] {
            for (sel_name, sel) in [
                ("hkvd", Selection::Hkvd),
                ("first_layer_only", Selection::FirstLayerOnly),
                ("random", Selection::Random { seed: 3 }),
            ] {
                let mut total = 0.0;
                let n = 8;
                for i in 0..n {
                    total += case_deviation(&exp.model, &mut ev, &ds, i, ratio, sel);
                }
                rows.push(
                    Row::new("fig06")
                        .col("model", exp.perf.spec.name)
                        .col("selection", sel_name)
                        .num("ratio", ratio as f64)
                        .num("attn_deviation", (total / n as f32) as f64),
                );
            }
        }
    }
    emit("fig06_attn_deviation", &rows);
}
