//! Span tracing: per-request timelines in a bounded global ring buffer,
//! exported as `chrome://tracing` JSON.
//!
//! Two recording styles share one [`Tracer`]:
//!
//! - **RAII**: [`TraceContext::enter`] binds a thread to a (trace id,
//!   parent span) pair; [`Span::begin`] then records a named interval on
//!   drop, automatically parenting any spans begun while it is open.
//!   With no context bound, `Span::begin` is inert (no allocation, no
//!   clock read beyond one thread-local load).
//! - **Explicit**: [`record_span`] / [`alloc_span_id`] for event-driven
//!   code (the gateway's pending-request table) that opens and closes
//!   intervals from different callbacks.
//!
//! Trace ids are process-agnostic `u64`s carried across worker hops in
//! `Submit`/`Ev` frames; span timestamps come from [`crate::now_nanos`],
//! so spans recorded by one process are mutually comparable (cross-host
//! traces are per-process timelines side by side).

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// One closed interval in a trace. `parent == 0` marks a root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    pub trace: u64,
    pub span: u64,
    pub parent: u64,
    pub name: String,
    pub start_ns: u64,
    pub end_ns: u64,
}

/// Default ring capacity (spans, not bytes). At ~8 spans per request
/// this holds the last ~1k requests.
pub const DEFAULT_RING_CAPACITY: usize = 8192;

/// The bounded span sink. Recording takes one short mutex hold per
/// *span* (not per token); overflow drops the oldest records and counts
/// them.
#[derive(Debug)]
pub struct Tracer {
    ring: Mutex<VecDeque<SpanRecord>>,
    capacity: AtomicUsize,
    dropped: AtomicU64,
}

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Allocates a process-unique nonzero span id.
pub fn alloc_span_id() -> u64 {
    NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed)
}

impl Tracer {
    fn new() -> Self {
        Self {
            ring: Mutex::new(VecDeque::new()),
            capacity: AtomicUsize::new(DEFAULT_RING_CAPACITY),
            dropped: AtomicU64::new(0),
        }
    }

    /// The process-wide tracer.
    pub fn global() -> &'static Tracer {
        static GLOBAL: OnceLock<Tracer> = OnceLock::new();
        GLOBAL.get_or_init(Tracer::new)
    }

    /// Resizes the ring (evicting oldest records if shrinking).
    pub fn set_capacity(&self, cap: usize) {
        self.capacity.store(cap.max(1), Ordering::Relaxed);
        let mut ring = self.ring.lock().unwrap();
        while ring.len() > cap.max(1) {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Appends one record; a no-op while instrumentation is disabled.
    pub fn record(&self, rec: SpanRecord) {
        if !crate::enabled() {
            return;
        }
        let cap = self.capacity.load(Ordering::Relaxed);
        let mut ring = self.ring.lock().unwrap();
        if ring.len() >= cap {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(rec);
    }

    /// Copies the ring without clearing it.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        self.ring.lock().unwrap().iter().cloned().collect()
    }

    /// Empties the ring, returning everything it held.
    pub fn drain(&self) -> Vec<SpanRecord> {
        self.ring.lock().unwrap().drain(..).collect()
    }

    /// Discards the ring contents (test isolation).
    pub fn clear(&self) {
        self.ring.lock().unwrap().clear();
    }

    /// Records evicted by the bound since process start.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// Records a closed span explicitly and returns its allocated id.
pub fn record_span(
    trace: u64,
    parent: u64,
    name: impl Into<String>,
    start_ns: u64,
    end_ns: u64,
) -> u64 {
    let span = alloc_span_id();
    Tracer::global().record(SpanRecord {
        trace,
        span,
        parent,
        name: name.into(),
        start_ns,
        end_ns: end_ns.max(start_ns),
    });
    span
}

/// Records a closed span under a **pre-allocated** id (see
/// [`alloc_span_id`]) — for event-driven code that must hand the id to a
/// peer (e.g. in a `Submit` frame, so the peer's spans can parent under
/// it) before the interval closes.
pub fn record_span_with_id(
    trace: u64,
    span: u64,
    parent: u64,
    name: impl Into<String>,
    start_ns: u64,
    end_ns: u64,
) {
    Tracer::global().record(SpanRecord {
        trace,
        span,
        parent,
        name: name.into(),
        start_ns,
        end_ns: end_ns.max(start_ns),
    });
}

thread_local! {
    /// (trace id, current parent span id) for RAII spans; trace 0 = off.
    static CTX: Cell<(u64, u64)> = const { Cell::new((0, 0)) };
}

/// Thread-local trace binding. See the module docs.
pub struct TraceContext;

impl TraceContext {
    /// The (trace, parent span) pair bound to this thread, or `(0, 0)`.
    pub fn current() -> (u64, u64) {
        CTX.with(|c| c.get())
    }

    /// Binds `trace`/`parent` to this thread until the guard drops
    /// (restoring whatever was bound before). `trace == 0` unbinds.
    pub fn enter(trace: u64, parent: u64) -> CtxGuard {
        let prev = CTX.with(|c| c.replace((trace, parent)));
        CtxGuard { prev }
    }
}

/// Restores the previous thread-local context on drop.
pub struct CtxGuard {
    prev: (u64, u64),
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        self.prev = CTX.with(|c| c.replace(self.prev));
    }
}

/// An RAII interval: begins now, records on drop (or [`Span::end`]),
/// and parents any spans begun on this thread while it is open. Inert
/// when the thread has no trace bound or instrumentation is disabled.
pub struct Span {
    trace: u64,
    span: u64,
    parent: u64,
    name: &'static str,
    start_ns: u64,
}

impl Span {
    /// Opens a span under the thread's current context.
    #[inline]
    pub fn begin(name: &'static str) -> Span {
        let (trace, parent) = TraceContext::current();
        if trace == 0 || !crate::enabled() {
            return Span {
                trace: 0,
                span: 0,
                parent: 0,
                name,
                start_ns: 0,
            };
        }
        let span = alloc_span_id();
        CTX.with(|c| c.set((trace, span)));
        Span {
            trace,
            span,
            parent,
            name,
            start_ns: crate::now_nanos(),
        }
    }

    /// True when this span will record (a context was bound at begin).
    pub fn is_recording(&self) -> bool {
        self.trace != 0
    }

    /// Closes the span now (equivalent to dropping it).
    pub fn end(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.trace == 0 {
            return;
        }
        // Restore this thread's parent to ours (we were the parent while
        // open). The context may have been rebound by an unrelated enter;
        // only restore if we are still the current parent.
        CTX.with(|c| {
            let cur = c.get();
            if cur == (self.trace, self.span) {
                c.set((self.trace, self.parent));
            }
        });
        Tracer::global().record(SpanRecord {
            trace: self.trace,
            span: self.span,
            parent: self.parent,
            name: self.name.to_string(),
            start_ns: self.start_ns,
            end_ns: crate::now_nanos(),
        });
    }
}

/// Renders spans as a `chrome://tracing` / Perfetto-loadable JSON
/// document (`traceEvents` with complete `"ph":"X"` events). Each trace
/// id becomes one `pid` row (numbered in first-seen order; the full
/// 64-bit ids travel in `args`), so one request reads as one process
/// lane with its spans nested by time.
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    let mut pid_of: Vec<u64> = Vec::new();
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (n, s) in spans.iter().enumerate() {
        let pid = match pid_of.iter().position(|&t| t == s.trace) {
            Some(i) => i + 1,
            None => {
                pid_of.push(s.trace);
                pid_of.len()
            }
        };
        if n > 0 {
            out.push(',');
        }
        let ts = s.start_ns as f64 / 1e3;
        let dur = (s.end_ns.saturating_sub(s.start_ns)) as f64 / 1e3;
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"cb\",\"ph\":\"X\",\"ts\":{ts:.3},\"dur\":{dur:.3},\
             \"pid\":{pid},\"tid\":1,\"args\":{{\"trace\":\"{}\",\"span\":\"{}\",\"parent\":\"{}\"}}}}",
            json_escape(&s.name),
            s.trace,
            s.span,
            s.parent
        ));
    }
    out.push_str("]}");
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_under_the_thread_context() {
        let trace = alloc_span_id() << 32 | 0xfeed; // unique per test run
        let _g = TraceContext::enter(trace, 0);
        let outer_id;
        {
            let outer = Span::begin("outer");
            assert!(outer.is_recording());
            outer_id = outer.span;
            {
                let inner = Span::begin("inner");
                assert_eq!(inner.parent, outer.span);
            }
        }
        let spans: Vec<SpanRecord> = Tracer::global()
            .snapshot()
            .into_iter()
            .filter(|s| s.trace == trace)
            .collect();
        assert_eq!(spans.len(), 2);
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        assert_eq!(inner.parent, outer_id);
        assert_eq!(outer.parent, 0);
        // Well-nested: the child interval lies within the parent's.
        assert!(outer.start_ns <= inner.start_ns && inner.end_ns <= outer.end_ns);
    }

    #[test]
    fn unbound_threads_record_nothing() {
        let before = Tracer::global().snapshot().len();
        {
            let s = Span::begin("ghost");
            assert!(!s.is_recording());
        }
        // No record with our name was added (other tests may append).
        assert!(!Tracer::global()
            .snapshot()
            .iter()
            .skip(before.saturating_sub(1))
            .any(|s| s.name == "ghost"));
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let t = Tracer::new();
        t.set_capacity(4);
        for i in 0..10 {
            t.record(SpanRecord {
                trace: 1,
                span: i + 1,
                parent: 0,
                name: "x".into(),
                start_ns: i,
                end_ns: i + 1,
            });
        }
        let got = t.snapshot();
        assert_eq!(got.len(), 4);
        assert_eq!(t.dropped(), 6);
        assert_eq!(got[0].span, 7, "oldest evicted first");
    }

    #[test]
    fn chrome_export_is_valid_and_groups_by_trace() {
        let spans = vec![
            SpanRecord {
                trace: 0xdead_beef_dead_beef,
                span: 1,
                parent: 0,
                name: "request".into(),
                start_ns: 1_000,
                end_ns: 9_000,
            },
            SpanRecord {
                trace: 0xdead_beef_dead_beef,
                span: 2,
                parent: 1,
                name: "serve \"q\"".into(),
                start_ns: 2_000,
                end_ns: 8_000,
            },
            SpanRecord {
                trace: 7,
                span: 3,
                parent: 0,
                name: "request".into(),
                start_ns: 1_500,
                end_ns: 2_500,
            },
        ];
        let json = chrome_trace_json(&spans);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"pid\":1"));
        assert!(json.contains("\"pid\":2"));
        assert!(json.contains("serve \\\"q\\\""));
        // Balanced braces/brackets — cheap structural sanity.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn context_guard_restores_previous_binding() {
        assert_eq!(TraceContext::current(), (0, 0));
        {
            let _a = TraceContext::enter(11, 5);
            assert_eq!(TraceContext::current(), (11, 5));
            {
                let _b = TraceContext::enter(22, 0);
                assert_eq!(TraceContext::current(), (22, 0));
            }
            assert_eq!(TraceContext::current(), (11, 5));
        }
        assert_eq!(TraceContext::current(), (0, 0));
    }
}
