//! The persistent disk tier: file-per-chunk segments with a write-behind
//! flusher.
//!
//! Each entry is one segment file `<key:016x>.seg` under the cache dir:
//!
//! ```text
//! magic u32 | version u32 | key u64 | payload_len u64
//! payload (payload_len bytes)
//! checksum u64 (word-wise FNV over all preceding bytes)
//! ```
//!
//! **Write-behind.** [`DiskBackend::put`] records the bytes in a pending
//! map and queues them to a flusher thread; the caller never waits on the
//! disk. Reads of a still-pending entry are served from the pending map
//! (page-cache semantics). [`DiskBackend::flush`] drains the queue — the
//! store calls it before shutdown so entries survive the process.
//!
//! **Crash safety.** The flusher writes to `<name>.tmp` and renames into
//! place, so a crash leaves either the old segment, the new segment, or a
//! `.tmp` orphan — never a torn `.seg`. On startup the backend re-indexes
//! the cache dir: `.tmp` orphans are deleted and any segment whose framing
//! or checksum fails is dropped rather than indexed.
//!
//! **Throttling.** An optional [`Throttle`] emulates a slower device with
//! real sleeps (access latency once per open, bandwidth per byte), which is
//! how the storage benchmarks sweep the §5.2 device grid on one machine.
//!
//! **Shared directories.** [`DiskBackend::open_shared`] opens the same
//! segment dir from several handles at once (the cluster's replicas all
//! back onto one persistent tier). Shared handles (a) use handle-unique
//! `.tmp` names so concurrent write-behind flushers never clobber each
//! other's temp files, (b) leave foreign `.tmp` files alone at startup
//! (they may be another live handle's in-flight write), and (c) support
//! [`StorageBackend::discover`]: a key missing from this handle's index is
//! re-probed on the filesystem, so segments persisted by a sibling replica
//! after this handle started become servable without a reopen.

use std::collections::HashMap;
use std::fs;
use std::io::Read;
use std::path::{Path, PathBuf};
use std::thread::JoinHandle;

use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Sender};
use parking_lot::Mutex;

use crate::backend::{
    BackendError, BytesStream, IoCounters, IoOps, ReadStream, StorageBackend, Throttle,
};
use crate::checksum::fnv64;

const MAGIC: u32 = 0x4342_5347; // "CBSG"
const VERSION: u32 = 1;
/// Bytes before the payload: magic, version, key, payload_len.
const HEADER_LEN: usize = 24;
/// Framing overhead of a segment: header plus trailing checksum.
const FRAME_LEN: usize = HEADER_LEN + 8;

#[derive(Debug)]
struct DiskState {
    /// key -> payload length, for every segment (durable or pending).
    index: HashMap<u64, u64>,
    /// Writes queued but not yet renamed into place, newest generation
    /// wins.
    pending: HashMap<u64, (u64, Bytes)>,
    next_gen: u64,
    used: u64,
    /// First flusher write error since the last `flush()`.
    write_error: Option<String>,
}

enum FlushMsg {
    Write { key: u64, gen: u64, bytes: Bytes },
    Barrier(Sender<()>),
}

/// Persistent file-per-chunk storage backend (see module docs).
pub struct DiskBackend {
    dir: PathBuf,
    throttle: Option<Throttle>,
    state: std::sync::Arc<Mutex<DiskState>>,
    io: std::sync::Arc<IoCounters>,
    tx: Option<Sender<FlushMsg>>,
    flusher: Option<JoinHandle<()>>,
    recovered: usize,
    dropped: usize,
    /// Several handles may own this dir concurrently (see module docs).
    shared: bool,
}

impl std::fmt::Debug for DiskBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskBackend")
            .field("dir", &self.dir)
            .field("throttle", &self.throttle)
            .field("shared", &self.shared)
            .field("entries", &self.len())
            .finish()
    }
}

fn segment_path(dir: &Path, key: u64) -> PathBuf {
    dir.join(format!("{key:016x}.seg"))
}

/// Parses a segment header, returning the payload length if the framing
/// fields (magic, version, key) match and `file_len` is consistent.
fn parse_seg_header(header: &[u8; HEADER_LEN], key: u64, file_len: u64) -> Option<u64> {
    let magic = u32::from_le_bytes(header[0..4].try_into().unwrap());
    let version = u32::from_le_bytes(header[4..8].try_into().unwrap());
    let seg_key = u64::from_le_bytes(header[8..16].try_into().unwrap());
    let payload_len = u64::from_le_bytes(header[16..24].try_into().unwrap());
    (magic == MAGIC
        && version == VERSION
        && seg_key == key
        && file_len == payload_len.checked_add(FRAME_LEN as u64)?)
    .then_some(payload_len)
}

/// Frames a payload as segment bytes.
fn frame(key: u64, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(FRAME_LEN + payload.len());
    buf.extend_from_slice(&MAGIC.to_le_bytes());
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&key.to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    buf.extend_from_slice(payload);
    let sum = fnv64(&buf);
    buf.extend_from_slice(&sum.to_le_bytes());
    buf
}

/// Parses and fully verifies segment bytes, returning the payload range.
fn verify_frame(key: u64, raw: &[u8]) -> Result<std::ops::Range<usize>, BackendError> {
    if raw.len() < FRAME_LEN {
        return Err(BackendError::Corrupt);
    }
    let body = raw.len() - 8;
    let declared = u64::from_le_bytes(raw[body..].try_into().unwrap());
    if fnv64(&raw[..body]) != declared {
        return Err(BackendError::Corrupt);
    }
    let magic = u32::from_le_bytes(raw[0..4].try_into().unwrap());
    let version = u32::from_le_bytes(raw[4..8].try_into().unwrap());
    let seg_key = u64::from_le_bytes(raw[8..16].try_into().unwrap());
    let payload_len = u64::from_le_bytes(raw[16..24].try_into().unwrap());
    if magic != MAGIC
        || version != VERSION
        || seg_key != key
        || payload_len as usize != raw.len() - FRAME_LEN
    {
        return Err(BackendError::Corrupt);
    }
    Ok(HEADER_LEN..body)
}

impl DiskBackend {
    /// Opens (or creates) a cache dir with exclusive ownership, re-indexing
    /// surviving segments and dropping `.tmp` orphans and torn/corrupt
    /// segment files.
    pub fn new(dir: impl Into<PathBuf>, throttle: Option<Throttle>) -> Result<Self, BackendError> {
        Self::open(dir, throttle, false)
    }

    /// Opens a cache dir that other live handles (replicas, possibly other
    /// processes) also use. Foreign `.tmp` files are left in place at
    /// startup — they may be a sibling's in-flight write — and keys absent
    /// from this handle's index can be [`StorageBackend::discover`]ed from
    /// the filesystem later. Torn/corrupt `.seg` files are still dropped:
    /// every handle would reject them identically.
    pub fn open_shared(
        dir: impl Into<PathBuf>,
        throttle: Option<Throttle>,
    ) -> Result<Self, BackendError> {
        Self::open(dir, throttle, true)
    }

    fn open(
        dir: impl Into<PathBuf>,
        throttle: Option<Throttle>,
        shared: bool,
    ) -> Result<Self, BackendError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| BackendError::Io(e.to_string()))?;
        let io = std::sync::Arc::new(IoCounters::default());

        let mut index = HashMap::new();
        let mut used = 0u64;
        let mut recovered = 0usize;
        let mut dropped = 0usize;
        io.open();
        let listing = fs::read_dir(&dir).map_err(|e| BackendError::Io(e.to_string()))?;
        for entry in listing.flatten() {
            let path = entry.path();
            let name = match path.file_name().and_then(|n| n.to_str()) {
                Some(n) => n.to_string(),
                None => continue,
            };
            if name.ends_with(".tmp") {
                // Exclusive owner: any .tmp is crash debris. Shared: it may
                // be a live sibling's in-flight write — leave it alone.
                if !shared {
                    io.delete();
                    let _ = fs::remove_file(&path);
                    dropped += 1;
                }
                continue;
            }
            let Some(stem) = name.strip_suffix(".seg") else {
                continue;
            };
            let Ok(key) = u64::from_str_radix(stem, 16) else {
                continue;
            };
            // Full verification at startup: a recovered index must never
            // point at a segment that cannot serve a checksummed read.
            io.open();
            io.read();
            let ok = fs::read(&path)
                .map_err(|e| BackendError::Io(e.to_string()))
                .and_then(|raw| verify_frame(key, &raw).map(|r| r.len() as u64));
            match ok {
                Ok(len) => {
                    index.insert(key, len);
                    used += len;
                    recovered += 1;
                }
                Err(_) => {
                    io.delete();
                    let _ = fs::remove_file(&path);
                    dropped += 1;
                }
            }
        }

        let state = std::sync::Arc::new(Mutex::new(DiskState {
            index,
            pending: HashMap::new(),
            next_gen: 0,
            used,
            write_error: None,
        }));
        // Handle-unique so two shared handles (even across processes)
        // never race on one temp-file name.
        static NONCE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let nonce = (std::process::id() as u64) << 20
            | NONCE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);

        let (tx, rx) = unbounded::<FlushMsg>();
        let flusher = {
            let state = std::sync::Arc::clone(&state);
            let io = std::sync::Arc::clone(&io);
            let dir = dir.clone();
            std::thread::Builder::new()
                .name("cb-disk-flusher".to_string())
                .spawn(move || {
                    while let Ok(msg) = rx.recv() {
                        match msg {
                            FlushMsg::Write { key, gen, bytes } => {
                                let path = segment_path(&dir, key);
                                let tmp = dir.join(format!("{key:016x}.{nonce:x}.tmp"));
                                io.open();
                                io.write();
                                io.rename();
                                let res = fs::write(&tmp, frame(key, &bytes))
                                    .and_then(|_| fs::rename(&tmp, &path));
                                let mut s = state.lock();
                                if let Err(e) = res {
                                    s.write_error.get_or_insert_with(|| e.to_string());
                                }
                                if s.pending.get(&key).is_some_and(|&(g, _)| g == gen) {
                                    s.pending.remove(&key);
                                }
                                // The entry may have been removed while the
                                // write was in flight; the rename would
                                // resurrect it, so delete what we wrote.
                                // Exclusive dirs only: in a shared dir the
                                // path may by now hold a *sibling's* live
                                // segment (entries are content-addressed,
                                // so a stale same-key write is
                                // byte-identical anyway) — deleting it
                                // would steal the sibling's entry, which
                                // is worse than a rare benign
                                // resurrection.
                                if !shared && !s.index.contains_key(&key) {
                                    drop(s);
                                    io.delete();
                                    let _ = fs::remove_file(&path);
                                }
                            }
                            FlushMsg::Barrier(done) => {
                                let _ = done.send(());
                            }
                        }
                    }
                })
                .map_err(|e| BackendError::Io(e.to_string()))?
        };
        Ok(Self {
            dir,
            throttle,
            state,
            io,
            tx: Some(tx),
            flusher: Some(flusher),
            recovered,
            dropped,
            shared,
        })
    }

    /// Snapshot of the filesystem-operation counters.
    pub fn io_ops(&self) -> IoOps {
        self.io.snapshot()
    }

    /// The cache directory this backend persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Segments re-indexed by startup recovery.
    pub fn recovered_segments(&self) -> usize {
        self.recovered
    }

    /// Orphaned/torn files deleted by startup recovery.
    pub fn dropped_segments(&self) -> usize {
        self.dropped
    }

    /// Forgets an index mapping whose segment file has vanished (a shared
    /// sibling removed or quarantined it). A pending write is kept — the
    /// flusher will recreate the file.
    fn forget_stale(&self, key: u64) {
        let mut s = self.state.lock();
        if s.pending.contains_key(&key) {
            return;
        }
        if let Some(len) = s.index.remove(&key) {
            s.used -= len;
        }
    }

    fn drop_entry(&self, key: u64) -> bool {
        let mut s = self.state.lock();
        s.pending.remove(&key);
        let present = match s.index.remove(&key) {
            Some(len) => {
                s.used -= len;
                true
            }
            None => false,
        };
        drop(s);
        self.io.delete();
        let _ = fs::remove_file(segment_path(&self.dir, key));
        present
    }
}

impl StorageBackend for DiskBackend {
    fn name(&self) -> String {
        format!("disk:{}", self.dir.display())
    }

    fn persistent(&self) -> bool {
        true
    }

    fn shared(&self) -> bool {
        self.shared
    }

    fn put(&self, key: u64, bytes: Bytes) -> Result<(), BackendError> {
        let mut s = self.state.lock();
        s.next_gen += 1;
        let gen = s.next_gen;
        if let Some(old) = s.index.insert(key, bytes.len() as u64) {
            s.used -= old;
        }
        s.used += bytes.len() as u64;
        s.pending.insert(key, (gen, bytes.clone()));
        drop(s);
        self.tx
            .as_ref()
            .expect("flusher alive")
            .send(FlushMsg::Write { key, gen, bytes })
            .map_err(|_| BackendError::Io("flusher thread gone".to_string()))
    }

    fn get(&self, key: u64) -> Result<Option<Bytes>, BackendError> {
        {
            let s = self.state.lock();
            if let Some((_, bytes)) = s.pending.get(&key) {
                return Ok(Some(bytes.clone()));
            }
            if !s.index.contains_key(&key) {
                return Ok(None);
            }
        }
        let path = segment_path(&self.dir, key);
        self.io.open();
        self.io.read();
        let raw = match fs::read(&path) {
            Ok(raw) => raw,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                // Removed between index check and read — by this handle's
                // own remove, or by a shared sibling. Drop the stale
                // mapping so later lookups miss cleanly.
                self.forget_stale(key);
                return Ok(None);
            }
            Err(e) => return Err(BackendError::Io(e.to_string())),
        };
        if let Some(t) = self.throttle {
            t.charge_access();
            t.charge_bytes(raw.len());
        }
        match verify_frame(key, &raw) {
            Ok(range) => Ok(Some(Bytes::from(raw[range].to_vec()))),
            Err(e) => {
                // A corrupt segment can never serve a read again: drop it
                // so the tier above can repair by re-precompute.
                self.drop_entry(key);
                Err(e)
            }
        }
    }

    fn open_read(&self, key: u64) -> Result<Option<Box<dyn ReadStream + Send>>, BackendError> {
        {
            let s = self.state.lock();
            if let Some((_, bytes)) = s.pending.get(&key) {
                return Ok(Some(Box::new(BytesStream::new(bytes.clone()))));
            }
            if !s.index.contains_key(&key) {
                return Ok(None);
            }
        }
        let path = segment_path(&self.dir, key);
        self.io.open();
        let mut file = match fs::File::open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                self.forget_stale(key);
                return Ok(None);
            }
            Err(e) => return Err(BackendError::Io(e.to_string())),
        };
        let file_len = file
            .metadata()
            .map_err(|e| BackendError::Io(e.to_string()))?
            .len();
        let mut header = [0u8; HEADER_LEN];
        self.io.read();
        file.read_exact(&mut header)
            .map_err(|_| BackendError::Corrupt)?;
        let Some(payload_len) = parse_seg_header(&header, key, file_len) else {
            self.drop_entry(key);
            return Err(BackendError::Corrupt);
        };
        if let Some(t) = self.throttle {
            t.charge_access();
        }
        Ok(Some(Box::new(DiskStream {
            file,
            remaining: payload_len,
            throttle: self.throttle,
            payload_len,
            io: std::sync::Arc::clone(&self.io),
        })))
    }

    fn discover(&self, key: u64) -> Option<u64> {
        {
            let s = self.state.lock();
            if let Some(&len) = s.index.get(&key) {
                return Some(len);
            }
        }
        if !self.shared {
            // Exclusive owner: the index is the truth.
            return None;
        }
        // A sibling handle may have renamed a segment into place after this
        // handle's startup scan. Framing is checked here (cheap: 24 bytes);
        // the read that follows still verifies the checksum.
        let path = segment_path(&self.dir, key);
        self.io.open();
        let mut file = fs::File::open(&path).ok()?;
        let file_len = file.metadata().ok()?.len();
        let mut header = [0u8; HEADER_LEN];
        self.io.read();
        file.read_exact(&mut header).ok()?;
        let payload_len = parse_seg_header(&header, key, file_len)?;
        let mut s = self.state.lock();
        // Pending/index may have gained the key while the file was probed.
        match s.index.get(&key) {
            Some(&len) => Some(len),
            None => {
                s.index.insert(key, payload_len);
                s.used += payload_len;
                Some(payload_len)
            }
        }
    }

    fn remove(&self, key: u64) -> bool {
        self.drop_entry(key)
    }

    fn forget(&self, key: u64) -> bool {
        if !self.shared {
            return self.drop_entry(key);
        }
        // Shared dir: drop only this handle's index claim. The segment
        // file stays for sibling handles, and a pending write (if any) is
        // left to complete — its durable result is theirs to discover.
        let mut s = self.state.lock();
        match s.index.remove(&key) {
            Some(len) => {
                s.used -= len;
                true
            }
            None => false,
        }
    }

    fn contains(&self, key: u64) -> bool {
        self.state.lock().index.contains_key(&key)
    }

    fn entries(&self) -> Vec<(u64, u64)> {
        self.state
            .lock()
            .index
            .iter()
            .map(|(&k, &len)| (k, len))
            .collect()
    }

    fn len(&self) -> usize {
        self.state.lock().index.len()
    }

    fn used_bytes(&self) -> u64 {
        self.state.lock().used
    }

    fn flush(&self) -> Result<(), BackendError> {
        let (done_tx, done_rx) = bounded::<()>(1);
        self.tx
            .as_ref()
            .expect("flusher alive")
            .send(FlushMsg::Barrier(done_tx))
            .map_err(|_| BackendError::Io("flusher thread gone".to_string()))?;
        done_rx
            .recv()
            .map_err(|_| BackendError::Io("flusher thread gone".to_string()))?;
        match self.state.lock().write_error.take() {
            Some(e) => Err(BackendError::Io(e)),
            None => Ok(()),
        }
    }
}

impl Drop for DiskBackend {
    fn drop(&mut self) {
        // Closing the channel makes the flusher drain every queued write
        // before exiting, so dropping the backend is itself a flush.
        self.tx.take();
        if let Some(h) = self.flusher.take() {
            let _ = h.join();
        }
    }
}

/// Sequential file reader charging the device throttle per installment.
struct DiskStream {
    file: fs::File,
    remaining: u64,
    payload_len: u64,
    throttle: Option<Throttle>,
    io: std::sync::Arc<IoCounters>,
}

impl ReadStream for DiskStream {
    fn payload_len(&self) -> u64 {
        self.payload_len
    }

    fn read_next(&mut self, len: usize) -> Result<Bytes, BackendError> {
        let take = (len as u64).min(self.remaining) as usize;
        let mut buf = vec![0u8; take];
        if take > 0 {
            self.io.read();
        }
        self.file
            .read_exact(&mut buf)
            .map_err(|e| BackendError::Io(e.to_string()))?;
        self.remaining -= take as u64;
        if let Some(t) = self.throttle {
            t.charge_bytes(take);
        }
        Ok(Bytes::from(buf))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn test_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "cb-disk-{}-{}-{}",
            std::process::id(),
            tag,
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn put_get_roundtrips_through_pending_and_disk() {
        let dir = test_dir("roundtrip");
        let b = DiskBackend::new(&dir, None).unwrap();
        let payload = Bytes::from((0u8..200).collect::<Vec<_>>());
        b.put(42, payload.clone()).unwrap();
        // Readable immediately (pending map), and after the flush.
        assert_eq!(b.get(42).unwrap().unwrap(), payload);
        b.flush().unwrap();
        assert_eq!(b.get(42).unwrap().unwrap(), payload);
        assert_eq!(b.used_bytes(), 200);
        assert!(b.contains(42));
        assert!(b.remove(42));
        assert!(b.get(42).unwrap().is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn entries_survive_reopen() {
        let dir = test_dir("reopen");
        {
            let b = DiskBackend::new(&dir, None).unwrap();
            b.put(1, Bytes::from(vec![9u8; 64])).unwrap();
            b.put(2, Bytes::from(vec![7u8; 32])).unwrap();
            // Dropping the backend drains the write-behind queue.
        }
        let b = DiskBackend::new(&dir, None).unwrap();
        assert_eq!(b.recovered_segments(), 2);
        assert_eq!(b.len(), 2);
        assert_eq!(b.used_bytes(), 96);
        assert_eq!(b.get(1).unwrap().unwrap().as_ref(), &[9u8; 64][..]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_drops_tmp_orphans_and_torn_segments() {
        let dir = test_dir("recovery");
        {
            let b = DiskBackend::new(&dir, None).unwrap();
            b.put(1, Bytes::from(vec![1u8; 40])).unwrap();
            b.put(2, Bytes::from(vec![2u8; 40])).unwrap();
        }
        // Simulate a crash: one torn segment (truncated) and one .tmp.
        let torn = segment_path(&dir, 2);
        let raw = fs::read(&torn).unwrap();
        fs::write(&torn, &raw[..raw.len() / 2]).unwrap();
        fs::write(dir.join("00000000000000ff.tmp"), b"partial").unwrap();

        let b = DiskBackend::new(&dir, None).unwrap();
        assert_eq!(b.recovered_segments(), 1, "only the intact segment");
        assert_eq!(b.dropped_segments(), 2, "torn segment + tmp orphan");
        assert!(b.contains(1));
        assert!(!b.contains(2));
        assert!(!dir.join("00000000000000ff.tmp").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_segment_read_errors_and_is_dropped() {
        let dir = test_dir("corrupt");
        let b = DiskBackend::new(&dir, None).unwrap();
        b.put(5, Bytes::from(vec![3u8; 100])).unwrap();
        b.flush().unwrap();
        // Flip a payload byte on disk.
        let path = segment_path(&dir, 5);
        let mut raw = fs::read(&path).unwrap();
        raw[HEADER_LEN + 10] ^= 0xFF;
        fs::write(&path, &raw).unwrap();
        assert_eq!(b.get(5).unwrap_err(), BackendError::Corrupt);
        assert!(!b.contains(5), "corrupt segment evicted");
        assert!(!path.exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stream_reads_payload_in_order() {
        let dir = test_dir("stream");
        let b = DiskBackend::new(&dir, None).unwrap();
        let payload: Vec<u8> = (0u8..=99).collect();
        b.put(7, Bytes::from(payload.clone())).unwrap();
        b.flush().unwrap();
        let mut s = b.open_read(7).unwrap().unwrap();
        assert_eq!(s.payload_len(), 100);
        let mut got = Vec::new();
        loop {
            let chunk = s.read_next(32).unwrap();
            if chunk.is_empty() {
                break;
            }
            got.extend_from_slice(&chunk);
        }
        assert_eq!(got, payload);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn overwrite_replaces_and_reaccounts() {
        let dir = test_dir("overwrite");
        let b = DiskBackend::new(&dir, None).unwrap();
        b.put(9, Bytes::from(vec![1u8; 100])).unwrap();
        b.put(9, Bytes::from(vec![2u8; 50])).unwrap();
        b.flush().unwrap();
        assert_eq!(b.used_bytes(), 50);
        assert_eq!(b.get(9).unwrap().unwrap().as_ref(), &[2u8; 50][..]);
        assert_eq!(b.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn shared_handles_discover_each_others_segments() {
        let dir = test_dir("shared-discover");
        let a = DiskBackend::open_shared(&dir, None).unwrap();
        let b = DiskBackend::open_shared(&dir, None).unwrap();
        let payload = Bytes::from(vec![5u8; 80]);
        a.put(77, payload.clone()).unwrap();
        a.flush().unwrap();
        assert!(!b.contains(77), "b has not indexed a's segment yet");
        assert_eq!(b.discover(77), Some(80));
        assert!(b.contains(77));
        assert_eq!(b.used_bytes(), 80);
        assert_eq!(b.get(77).unwrap().unwrap(), payload);
        // A sibling's removal is observed as a clean miss, and the stale
        // index mapping is dropped rather than retried forever.
        assert!(a.remove(77));
        assert_eq!(b.get(77).unwrap(), None);
        assert!(!b.contains(77), "stale mapping dropped on vanished file");
        assert_eq!(b.discover(77), None, "removed segment is undiscoverable");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn exclusive_handle_never_discovers_foreign_segments() {
        let dir = test_dir("excl-discover");
        {
            let writer = DiskBackend::new(&dir, None).unwrap();
            writer.put(4, Bytes::from(vec![1u8; 32])).unwrap();
        }
        let later = DiskBackend::new(&dir, None).unwrap();
        assert_eq!(later.discover(4), Some(32), "indexed at startup");
        // Write a fresh segment behind the exclusive handle's back.
        {
            let sneaky = DiskBackend::open_shared(&dir, None).unwrap();
            sneaky.put(5, Bytes::from(vec![2u8; 16])).unwrap();
        }
        assert_eq!(
            later.discover(5),
            None,
            "exclusive handles trust only their own index"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn shared_startup_preserves_foreign_tmp_files() {
        let dir = test_dir("shared-tmp");
        fs::create_dir_all(&dir).unwrap();
        let foreign = dir.join("00000000000000aa.cafe.tmp");
        fs::write(&foreign, b"sibling in-flight write").unwrap();
        let shared = DiskBackend::open_shared(&dir, None).unwrap();
        assert_eq!(shared.dropped_segments(), 0);
        assert!(foreign.exists(), "shared startup must not delete .tmp");
        drop(shared);
        let exclusive = DiskBackend::new(&dir, None).unwrap();
        assert_eq!(exclusive.dropped_segments(), 1, "exclusive startup cleans");
        assert!(!foreign.exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_shared_writers_use_distinct_tmp_names() {
        let dir = test_dir("shared-write");
        let a = DiskBackend::open_shared(&dir, None).unwrap();
        let b = DiskBackend::open_shared(&dir, None).unwrap();
        // Interleaved write-behind on the same key from both handles: the
        // last rename wins, and neither flusher errors on the other's tmp.
        for i in 0..16u8 {
            a.put(9, Bytes::from(vec![i; 64])).unwrap();
            b.put(9, Bytes::from(vec![i ^ 0xFF; 64])).unwrap();
        }
        a.flush().unwrap();
        b.flush().unwrap();
        let got = a.get(9).unwrap().unwrap();
        assert_eq!(got.len(), 64);
        assert!(
            got.iter().all(|&x| x == 15) || got.iter().all(|&x| x == 15 ^ 0xFF),
            "one complete final generation survives, never a torn mix"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn remove_during_pending_write_does_not_resurrect() {
        let dir = test_dir("race");
        let b = DiskBackend::new(&dir, None).unwrap();
        b.put(3, Bytes::from(vec![4u8; 64])).unwrap();
        assert!(b.remove(3));
        b.flush().unwrap();
        assert!(!b.contains(3));
        assert!(
            !segment_path(&dir, 3).exists(),
            "flusher must not resurrect"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
