//! Figure 10: the loading controller's two decisions.
//!
//! (a) For a fixed device (the 1 GB/s SSD of the paper's example), sweep
//!     the recompute ratio: below the equal-delay ratio recomputation is
//!     *free* (hidden by loading); above it TTFT grows. Pipelining on/off
//!     contrast included.
//! (b) For the fixed default ratio (15 %), find the cheapest device whose
//!     loading still hides under recomputation.

use cb_core::controller::LoadingController;
use cb_storage::device::DeviceKind;
use cb_storage::perf::{PaperModel, PerfModel};

use crate::out::{emit, Row};

/// Runs the experiment and emits rows.
pub fn run() {
    let l = 4096usize; // the paper's running example: a 4K context
    let suffix = 32usize;

    // (a) Ratio sweep on Llama-7B @ 1 GB/s commodity SSD.
    let mut rows = Vec::new();
    let perf = PerfModel::on_a40(PaperModel::Llama7B);
    let ctl = LoadingController::new(perf);
    let dev = DeviceKind::CommoditySsd;
    let best = perf.equal_delay_ratio(l, dev);
    for ratio in [0.0, 0.05, 0.10, 0.15, 0.20, 0.30, 0.50, 0.75, 1.0] {
        rows.push(
            Row::new("fig10a")
                .col("model", perf.spec.name)
                .col("device", dev.spec().name)
                .num("ratio", ratio)
                .num(
                    "recompute_ms_per_layer",
                    perf.recompute_layer_time(ratio, l) * 1e3,
                )
                .num("load_ms_per_layer", perf.load_layer_time(l, dev) * 1e3)
                .num("ttft_pipelined_s", perf.ttft_blend(ratio, l, suffix, dev))
                .num(
                    "ttft_unpipelined_s",
                    perf.ttft_blend_unpipelined(ratio, l, suffix, dev),
                )
                .col("hidden", ratio <= best),
        );
    }
    emit("fig10a_ratio_vs_delay", &rows);

    // (b) Device choice at the quality ratio.
    let mut rows = Vec::new();
    for pm in [
        PaperModel::Mistral7B,
        PaperModel::Yi34B,
        PaperModel::Llama70B,
    ] {
        let perf = PerfModel::on_a40(pm);
        let ctl = LoadingController::new(perf);
        let picked = ctl.pick_device(l, 0.15, &DeviceKind::all());
        for d in DeviceKind::all() {
            let load = perf.load_layer_time(l, d);
            let rec = perf.recompute_layer_time(0.15, l);
            rows.push(
                Row::new("fig10b")
                    .col("model", perf.spec.name)
                    .col("device", d.spec().name)
                    .num("load_ms_per_layer", load * 1e3)
                    .num("recompute_ms_per_layer", rec * 1e3)
                    .col("hides", load <= rec)
                    .num("cost_$per_gb_month", d.spec().cost_per_gb_month)
                    .col("picked", Some(d) == picked),
            );
        }
    }
    let _ = ctl;
    emit("fig10b_device_choice", &rows);
}
