//! [`NetClient`]: the remote front door. Speaks the client half of the
//! protocol to a gateway over any [`Transport`] — submit requests and get
//! back ordinary [`ResponseStream`]s, register chunks cluster-wide, and
//! snapshot worker health. The `cb_gateway --smoke` self-check and the
//! loopback-vs-TCP parity tests drive the cluster exclusively through
//! this type.
//!
//! **Sessions survive the gateway.** A client built with
//! [`NetClient::connect_endpoints`] holds an *ordered* endpoint list —
//! primary first, warm standbys after. When the connection dies it
//! redials the list in order under the [`RetryPolicy`] backoff and
//! re-submits every in-flight request **by its original id**; each
//! session's [`ReplayFilter`] suppresses the already-delivered event
//! prefix (replayed tokens are verified bit-identical), so a collector
//! that spans a gateway takeover still sees one seamless stream. A
//! client built over a bare transport ([`NetClient::connect`]) has no
//! endpoints to redial: its open streams close on disconnect and
//! collectors observe [`EngineError::Canceled`].

use crate::message::{Message, WireRequest};
use crate::retry::RetryPolicy;
use crate::tcp::TcpTransport;
use crate::transport::{NetError, Transport};
use cb_core::engine::{EngineError, ErrorCode, Request, Response};
use cb_core::scheduler::ServiceProbe;
use cb_core::stream::{Event, ReplayFilter, ResponseStream};
use cb_kv::ChunkId;
use cb_obs::metrics::MetricsSnapshot;
use cb_tokenizer::TokenId;
use crossbeam::channel::{self, Sender};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// One in-flight submission: everything needed to re-drive it on a
/// fresh connection and splice the resumed stream seamlessly.
struct Session {
    request: WireRequest,
    tx: Sender<Event>,
    filter: ReplayFilter,
    /// Trace context re-sent with the submission on every resume.
    trace: u64,
    span: u64,
}

struct ClientInner {
    conn: RwLock<Arc<dyn Transport>>,
    /// Ordered redial list (primary first, standbys after); empty for
    /// clients over a bare transport, which cannot resume.
    endpoints: Vec<String>,
    policy: RetryPolicy,
    sessions: Mutex<HashMap<u64, Session>>,
    rpcs: Mutex<HashMap<u64, Sender<Message>>>,
    next_id: AtomicU64,
    shutdown: AtomicBool,
    reconnects: AtomicU64,
}

impl ClientInner {
    fn conn(&self) -> Arc<dyn Transport> {
        self.conn.read().unwrap().clone()
    }

    fn demux_loop(self: Arc<Self>) {
        loop {
            if self.shutdown.load(Ordering::Relaxed) {
                return;
            }
            match self.conn().recv_timeout(Duration::from_millis(50)) {
                Ok(Message::Ev { id, event, .. }) => self.handle_event(id, event.into_event()),
                Ok(
                    msg @ (Message::RegisterReply { .. }
                    | Message::ClusterStatusReply { .. }
                    | Message::MetricsReply { .. }),
                ) => {
                    let rpc = match &msg {
                        Message::RegisterReply { rpc, .. }
                        | Message::ClusterStatusReply { rpc, .. }
                        | Message::MetricsReply { rpc, .. } => *rpc,
                        _ => unreachable!(),
                    };
                    if let Some(tx) = self.rpcs.lock().unwrap().remove(&rpc) {
                        let _ = tx.send(msg);
                    }
                }
                Ok(_) => {}
                Err(NetError::Timeout) => {}
                Err(_) => {
                    // In-flight RPCs do not resume (their reply routing
                    // died with the connection): fail them now.
                    self.rpcs.lock().unwrap().clear();
                    if !self.try_resume() {
                        // Gateway gone for good: dropping the senders
                        // closes every open stream, so collectors observe
                        // `Canceled` rather than hanging.
                        self.sessions.lock().unwrap().clear();
                        return;
                    }
                }
            }
        }
    }

    /// Routes one stream event through its session's replay filter:
    /// forwards fresh events, suppresses the prefix replayed after a
    /// reconnect (verifying bit-identity), retires the session on the
    /// first forwarded terminal.
    fn handle_event(&self, id: u64, ev: Event) {
        let mut sessions = self.sessions.lock().unwrap();
        let Some(s) = sessions.get_mut(&id) else {
            return; // Late event for a resolved stream.
        };
        let forward = match s.filter.admit(&ev) {
            Ok(forward) => forward,
            Err(m) => {
                let _ = s.tx.send(Event::Failed(EngineError::Remote {
                    code: ErrorCode::Corrupt,
                    message: format!("resumed stream diverged: {m}"),
                }));
                sessions.remove(&id);
                debug_assert!(false, "resumed stream diverged: {m}");
                return;
            }
        };
        if !forward {
            return;
        }
        let terminal = ev.is_terminal();
        let _ = s.tx.send(ev);
        if terminal {
            sessions.remove(&id);
        }
    }

    /// Redials the endpoint list in order under the policy backoff and
    /// re-submits every open session by its original id. Returns `false`
    /// when there are no endpoints or the retry budget is spent.
    fn try_resume(&self) -> bool {
        if self.endpoints.is_empty() {
            return false;
        }
        for attempt in 1..=self.policy.max_retries {
            std::thread::sleep(self.policy.backoff(attempt));
            if self.shutdown.load(Ordering::Relaxed) {
                return false;
            }
            for ep in &self.endpoints {
                let Ok(t) = TcpTransport::connect(ep.as_str()) else {
                    continue;
                };
                let t: Arc<dyn Transport> = Arc::new(t);
                if t.send(&Message::HelloClient).is_err() {
                    continue;
                }
                let resumed = {
                    let mut sessions = self.sessions.lock().unwrap();
                    let mut ok = true;
                    for (&id, s) in sessions.iter_mut() {
                        // The new gateway sees a fresh submission; our
                        // filter suppresses the replayed prefix.
                        s.filter.rewind();
                        let msg = Message::Submit {
                            id,
                            trace: s.trace,
                            span: s.span,
                            blocking: false,
                            request: s.request.clone(),
                        };
                        if t.send(&msg).is_err() {
                            ok = false;
                            break;
                        }
                    }
                    ok
                };
                if !resumed {
                    continue;
                }
                *self.conn.write().unwrap() = t;
                self.reconnects.fetch_add(1, Ordering::Relaxed);
                return true;
            }
        }
        false
    }

    /// One request/reply RPC. `name` is the wire verb — timeout errors
    /// name it and the destination so operators know *which* call to
    /// *where* stalled.
    fn rpc(&self, name: &str, build: impl FnOnce(u64) -> Message) -> Result<Message, NetError> {
        let rpc = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = channel::unbounded();
        self.rpcs.lock().unwrap().insert(rpc, tx);
        let conn = self.conn();
        if let Err(e) = conn.send(&build(rpc)) {
            self.rpcs.lock().unwrap().remove(&rpc);
            return Err(NetError::Io(format!(
                "{name} RPC to gateway {} failed to send: {e}",
                conn.peer()
            )));
        }
        rx.recv_timeout(self.policy.rpc_timeout).map_err(|_| {
            self.rpcs.lock().unwrap().remove(&rpc);
            NetError::Io(format!(
                "{name} RPC to gateway {} timed out after {:?}",
                conn.peer(),
                self.policy.rpc_timeout
            ))
        })
    }
}

/// A connected client session (see module docs). Dropping it closes the
/// session; streams still open report [`EngineError::Canceled`].
pub struct NetClient {
    inner: Arc<ClientInner>,
    demux: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for NetClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetClient")
            .field("peer", &self.inner.conn().peer())
            .finish()
    }
}

impl NetClient {
    /// Opens a client session on `conn`: announces `HelloClient` and
    /// starts the demux thread that routes incoming frames to streams.
    /// No endpoint list, so a dead connection is final (streams close).
    pub fn connect(conn: Arc<dyn Transport>) -> Result<NetClient, NetError> {
        Self::start(conn, Vec::new(), RetryPolicy::default())
    }

    /// Dials an **ordered** endpoint list — the primary gateway first,
    /// warm standbys after — taking the first that accepts, under the
    /// policy's backoff. The session then survives gateway failover:
    /// on disconnect it redials the same list and resumes every
    /// in-flight stream by request id (see module docs).
    pub fn connect_endpoints(
        endpoints: &[impl AsRef<str>],
        policy: RetryPolicy,
    ) -> Result<NetClient, NetError> {
        let endpoints: Vec<String> = endpoints.iter().map(|e| e.as_ref().to_string()).collect();
        if endpoints.is_empty() {
            return Err(NetError::Io("empty gateway endpoint list".into()));
        }
        let mut last_err = None;
        for attempt in 0..=policy.max_retries {
            std::thread::sleep(policy.backoff(attempt));
            for ep in &endpoints {
                match TcpTransport::connect(ep.as_str()) {
                    Ok(t) => return Self::start(Arc::new(t), endpoints.clone(), policy),
                    Err(e) => last_err = Some(format!("{ep}: {e}")),
                }
            }
        }
        Err(NetError::Io(format!(
            "no gateway reachable among {:?}: last error {}",
            endpoints,
            last_err.unwrap_or_else(|| "<none>".into())
        )))
    }

    fn start(
        conn: Arc<dyn Transport>,
        endpoints: Vec<String>,
        policy: RetryPolicy,
    ) -> Result<NetClient, NetError> {
        conn.send(&Message::HelloClient)?;
        let inner = Arc::new(ClientInner {
            conn: RwLock::new(conn),
            endpoints,
            policy,
            sessions: Mutex::new(HashMap::new()),
            rpcs: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
            reconnects: AtomicU64::new(0),
        });
        let demux = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("cb-net-client-demux".into())
                .spawn(move || inner.demux_loop())
                .map_err(|e| NetError::Io(e.to_string()))?
        };
        Ok(NetClient {
            inner,
            demux: Some(demux),
        })
    }

    /// Submits a request through the gateway's locality router. The
    /// returned stream replays the worker's events exactly as an
    /// in-process `EngineService` stream would; routing failures arrive
    /// as `Event::Failed` with the structured
    /// [`ErrorCode::NoHealthyWorker`] error.
    pub fn submit_stream(&self, request: &Request) -> ResponseStream {
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, stream) = ResponseStream::channel();
        let wire = WireRequest::from_request(request);
        self.inner.sessions.lock().unwrap().insert(
            id,
            Session {
                request: wire.clone(),
                tx: tx.clone(),
                filter: ReplayFilter::new(),
                trace: request.trace,
                span: request.trace_parent,
            },
        );
        let msg = Message::Submit {
            id,
            trace: request.trace,
            span: request.trace_parent,
            blocking: false,
            request: wire,
        };
        if self.inner.conn().send(&msg).is_err() && self.inner.endpoints.is_empty() {
            // No redial list: fail now. With endpoints, the session stays
            // journaled — the demux loop's resume will re-drive it.
            self.inner.sessions.lock().unwrap().remove(&id);
            let _ = tx.send(Event::Failed(EngineError::Remote {
                code: ErrorCode::NoHealthyWorker,
                message: "gateway connection closed".into(),
            }));
        }
        stream
    }

    /// Blocking one-shot convenience over [`NetClient::submit_stream`].
    pub fn submit(&self, request: &Request) -> Result<Response, EngineError> {
        self.submit_stream(request).collect()
    }

    /// Registers a chunk on every worker. With `eager`, the chunk's home
    /// worker precomputes its KV and replicates it to the persistent
    /// tier; otherwise registration is lazy everywhere.
    pub fn register_chunk(&self, tokens: &[TokenId], eager: bool) -> Result<ChunkId, EngineError> {
        let reply = self
            .inner
            .rpc("RegisterChunk", |rpc| Message::RegisterChunk {
                rpc,
                eager,
                tokens: tokens.to_vec(),
            })
            .map_err(|e| EngineError::Storage(e.to_string()))?;
        match reply {
            Message::RegisterReply {
                result: Ok(raw), ..
            } => Ok(ChunkId(raw)),
            Message::RegisterReply {
                result: Err(failure),
                ..
            } => Err(failure.into_error()),
            other => Err(EngineError::Storage(format!(
                "unexpected registration reply {other:?}"
            ))),
        }
    }

    /// Per-worker health and last-heartbeat probes, as the gateway sees
    /// them.
    pub fn cluster_status(&self) -> Result<(Vec<bool>, Vec<ServiceProbe>), NetError> {
        match self.inner.rpc("Status", |rpc| Message::Status { rpc })? {
            Message::ClusterStatusReply {
                healthy, probes, ..
            } => Ok((healthy, probes)),
            other => Err(NetError::Io(format!("unexpected status reply {other:?}"))),
        }
    }

    /// How many times this session redialed and resumed after losing its
    /// gateway connection.
    pub fn reconnects(&self) -> u64 {
        self.inner.reconnects.load(Ordering::Relaxed)
    }

    /// Cluster-aggregated metrics: the gateway publishes its own
    /// counters, fans the scrape out to every connected worker, and
    /// merges the registries (instance-deduplicated). One call sees
    /// request/TTFT histograms, store tier counters, gateway
    /// retry/failover counters, and per-worker load gauges.
    pub fn scrape(&self) -> Result<MetricsSnapshot, NetError> {
        match self.inner.rpc("Metrics", |rpc| Message::Metrics { rpc })? {
            Message::MetricsReply { snapshot, .. } => MetricsSnapshot::decode(&snapshot)
                .map_err(|e| NetError::Io(format!("undecodable metrics snapshot: {e}"))),
            other => Err(NetError::Io(format!("unexpected metrics reply {other:?}"))),
        }
    }

    /// [`NetClient::scrape`] rendered as Prometheus text exposition.
    pub fn scrape_text(&self) -> Result<String, NetError> {
        Ok(self.scrape()?.to_prometheus())
    }
}

impl Drop for NetClient {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Relaxed);
        // Tell the gateway the session is over (best-effort).
        let _ = self.inner.conn().send(&Message::Shutdown);
        if let Some(h) = self.demux.take() {
            let _ = h.join();
        }
    }
}
