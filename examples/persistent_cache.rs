//! Persistent KV cache: register chunks, persist, drop the engine, rebuild
//! from the same cache dir, and serve a warm request without recomputing
//! any chunk KV.
//!
//! Run with: `cargo run --release --example persistent_cache`

use std::time::Instant;

use cacheblend::prelude::*;
use cacheblend::tokenizer::TokenKind::*;

fn main() {
    let cache_dir = std::env::temp_dir().join(format!(
        "cacheblend-persistent-cache-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&cache_dir);

    // The deployment: a RAM fast tier over a persistent NVMe-class disk
    // tier holding segment files under `cache_dir`.
    let build = || {
        EngineBuilder::new(ModelProfile::Mistral7B)
            .blend_config(BlendConfig::with_ratio(0.4))
            .storage(
                StorageConfig::default()
                    .tier(DeviceKind::CpuRam, 32 << 20)
                    .disk_tier(DeviceKind::NvmeSsd, 1 << 30, &cache_dir),
            )
            .build()
            .expect("engine")
    };

    // ---- Session 1: cold start, precompute, persist. ----------------
    let engine = build();
    let vocab = engine.model().cfg.vocab.clone();
    let t = |k| vocab.id(k);
    let chunk1 = vec![t(Entity(5)), t(Attr(0)), t(Value(1)), t(Sep)];
    let chunk2 = vec![
        t(Ref),
        t(Attr(3)),
        t(Value(9)),
        t(Sep),
        t(Entity(8)),
        t(Attr(1)),
        t(Value(4)),
        t(Sep),
    ];
    let query = vec![t(Query), t(Entity(5)), t(Attr(3)), t(QMark)];

    let t0 = Instant::now();
    let ids = engine
        .register_chunks(&[chunk1.clone(), chunk2.clone()])
        .expect("register");
    let cold_register = t0.elapsed();
    let resp = engine
        .submit(Request::new(ids, query.clone()).max_new_tokens(4))
        .expect("serve");
    println!(
        "session 1: registered 2 chunks in {:.2?} (KV precomputed), answer → {}",
        cold_register,
        vocab.render_seq(&resp.answer)
    );
    println!(
        "           cold TTFT {:.2?} (precompute {:.2?})",
        resp.ttft.total - resp.ttft.decode,
        resp.ttft.precompute
    );

    // Demote the KV to the disk tier and flush the segment files.
    engine.persist().expect("persist");
    let on_disk = engine.store().tier_used(1);
    drop(engine);
    println!(
        "           persisted {on_disk} bytes to {}\n",
        cache_dir.display()
    );

    // ---- Session 2: a new process rebuilds over the same dir. --------
    let engine = build();
    println!(
        "session 2: recovered {} entries ({} bytes) from the cache dir",
        engine.store().len(),
        engine.store().used_bytes()
    );

    let t0 = Instant::now();
    let ids = engine
        .register_chunks(&[chunk1, chunk2])
        .expect("re-register");
    let warm_register = t0.elapsed();
    assert_eq!(
        engine.store().stats().inserts,
        0,
        "re-registration found every entry on disk — no precompute"
    );

    let resp = engine
        .submit(Request::new(ids, query).max_new_tokens(4))
        .expect("serve warm");
    assert!(
        resp.chunk_sources
            .iter()
            .all(|s| matches!(s, cacheblend::engine::ChunkSource::Hit { .. })),
        "warm request must hit the recovered entries"
    );
    println!(
        "           re-registered in {:.2?} (no recompute), warm TTFT {:.2?}, answer → {}",
        warm_register,
        resp.ttft.total - resp.ttft.decode,
        vocab.render_seq(&resp.answer)
    );
    println!("           served from tier(s): {:?}", resp.chunk_sources);

    let _ = std::fs::remove_dir_all(&cache_dir);
}
