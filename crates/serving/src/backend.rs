//! Serving backends: the [`ServingBackend`] trait closing the loop
//! between the discrete-event simulator and the real engine.
//!
//! The simulator's job is queueing — Poisson arrivals against a busy GPU.
//! *What one admission costs* is the backend's job, and there are two
//! kinds:
//!
//! - [`AnalyticBackend`] — the paper-scale delay model (Figure 14's
//!   mechanics): per-scheme store accounting against a byte-bounded LRU
//!   and admission costs from `cb-storage`'s [`PerfModel`] (CacheBlend
//!   admissions go through the engine's [`blend_admission`], so the model
//!   is shared, not re-derived).
//! - [`EngineBackend`] — the real thing: every simulated request is
//!   mapped to a real [`Request`](cb_core::engine::Request) and served
//!   through an [`EngineService`] (scheduler, streaming events, tiered
//!   store, pipelined blend on the compiled model). The admission cost is
//!   the *measured* wall-clock TTFT, so the simulator's saturation knees
//!   come from real blend latencies.
//!
//! Both implement one trait, so `Simulator::run_with` takes either.

use std::collections::HashMap;

use cb_core::engine::{blend_admission, Request as EngineRequest};
use cb_core::scheduler::EngineService;
use cb_core::stream::Event;
use cb_kv::ChunkId;
use cb_storage::perf::PerfModel;
use cb_tokenizer::{TokenId, TokenKind};

use cb_baselines::SchemeKind;

use crate::sim::ServingConfig;
use crate::workload::Request;

/// What one admission cost: the backend's answer to "serve this request".
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Admission {
    /// Seconds of service until the first token (queueing excluded — the
    /// simulator adds that).
    pub ttft_work_s: f64,
    /// GPU-seconds the admission leaves busy (pipelined loading overlaps
    /// compute, so this can be below `ttft_work_s`).
    pub gpu_work_s: f64,
    /// Seconds of decode occupying the GPU after the first token.
    pub decode_s: f64,
    /// Chunk-cache lookups this request performed.
    pub lookups: u64,
    /// Lookups served from cache.
    pub hits: u64,
    /// The backend failed to serve the request. The simulator excludes it
    /// from the TTFT distribution and counts it in
    /// [`ServingStats::failures`](crate::sim::ServingStats).
    pub failed: bool,
}

impl Admission {
    /// A failed admission: zero cost, excluded from latency statistics.
    pub fn failure() -> Self {
        Self {
            ttft_work_s: 0.0,
            gpu_work_s: 0.0,
            decode_s: 0.0,
            lookups: 0,
            hits: 0,
            failed: true,
        }
    }
}

/// Store-residency counters a backend can report after a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BackendSummary {
    /// Peak bytes resident in the backend's KV store.
    pub peak_store_bytes: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
}

/// A serving backend: prices (or really serves) one admission at a time,
/// in arrival order.
pub trait ServingBackend {
    /// Short label for reporting ("analytic", "engine").
    fn name(&self) -> &'static str;

    /// Serves one request and returns its admission cost.
    fn serve(&mut self, req: &Request) -> Admission;

    /// Store counters accumulated so far.
    fn summary(&self) -> BackendSummary {
        BackendSummary::default()
    }
}

/// Byte-bounded LRU used by the analytic backend's store model.
pub(crate) struct LruStore {
    capacity: u64,
    used: u64,
    peak: u64,
    clock: u64,
    entries: HashMap<u64, (u64, u64)>, // id -> (bytes, last_used)
    evictions: u64,
}

impl LruStore {
    pub(crate) fn new(capacity: u64) -> Self {
        Self {
            capacity,
            used: 0,
            peak: 0,
            clock: 0,
            entries: HashMap::new(),
            evictions: 0,
        }
    }

    fn hit(&mut self, id: u64) -> bool {
        self.clock += 1;
        if let Some(e) = self.entries.get_mut(&id) {
            e.1 = self.clock;
            true
        } else {
            false
        }
    }

    fn insert(&mut self, id: u64, bytes: u64) {
        self.clock += 1;
        if self.entries.contains_key(&id) || bytes > self.capacity {
            return;
        }
        while self.used + bytes > self.capacity {
            let victim = *self
                .entries
                .iter()
                .min_by_key(|(_, (_, t))| *t)
                .map(|(k, _)| k)
                .expect("over capacity with no entries");
            let (b, _) = self.entries.remove(&victim).unwrap();
            self.used -= b;
            self.evictions += 1;
        }
        self.entries.insert(id, (bytes, self.clock));
        self.used += bytes;
        self.peak = self.peak.max(self.used);
    }
}

fn mix(a: u64, b: u64) -> u64 {
    (a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15)).wrapping_mul(0xFF51_AFD7_ED55_8CCD)
}

/// The paper-scale delay-model backend (the original Figure-14 arm).
pub struct AnalyticBackend {
    cfg: ServingConfig,
    entry_bytes: u64,
    store: LruStore,
}

impl AnalyticBackend {
    /// Builds the backend for a simulator configuration.
    pub fn new(cfg: ServingConfig) -> Self {
        // Entry sizes are modelled in whole bytes (rounded up) so store
        // accounting is exact integer arithmetic.
        let entry_bytes = cfg.perf.total_kv_bytes(cfg.chunk_tokens).ceil() as u64;
        let store = LruStore::new(cfg.store_capacity);
        Self {
            cfg,
            entry_bytes,
            store,
        }
    }
}

impl ServingBackend for AnalyticBackend {
    fn name(&self) -> &'static str {
        "analytic"
    }

    fn serve(&mut self, req: &Request) -> Admission {
        let cfg = &self.cfg;
        let perf: &PerfModel = &cfg.perf;
        let k = req.chunk_ids.len();
        let ctx_tokens = k * cfg.chunk_tokens;
        let mut lookups = 0u64;
        let mut hits = 0u64;

        let (ttft_work_s, gpu_work_s) = match cfg.scheme {
            SchemeKind::FullRecompute | SchemeKind::MapReduce | SchemeKind::MapRerank => {
                let t = perf.ttft_full_prefill(ctx_tokens + cfg.query_tokens);
                (t, t)
            }
            SchemeKind::PrefixCaching => {
                // Longest cached prefix chain. Every chunk counts as a
                // lookup; chunks past the first miss can never hit.
                let mut chain = 0u64;
                let mut matched = 0usize;
                let mut walking = true;
                let mut ids = Vec::with_capacity(k);
                lookups += k as u64;
                for &c in &req.chunk_ids {
                    chain = mix(chain, c);
                    ids.push(chain);
                    if walking {
                        if self.store.hit(chain) {
                            hits += 1;
                            matched += 1;
                        } else {
                            walking = false;
                        }
                    }
                }
                for &id in ids.iter().skip(matched) {
                    self.store.insert(id, self.entry_bytes);
                }
                let hit_tokens = matched * cfg.chunk_tokens;
                let t = perf.ttft_prefix_caching(ctx_tokens + cfg.query_tokens, hit_tokens);
                (t, t)
            }
            SchemeKind::FullReuse | SchemeKind::CacheBlend => {
                let mut hit_chunks = 0usize;
                for &c in &req.chunk_ids {
                    lookups += 1;
                    if self.store.hit(c) {
                        hits += 1;
                        hit_chunks += 1;
                    } else {
                        self.store.insert(c, self.entry_bytes);
                    }
                }
                let hit_tokens = hit_chunks * cfg.chunk_tokens;
                let miss_tokens = ctx_tokens - hit_tokens;
                if cfg.scheme == SchemeKind::FullReuse {
                    let t = perf.ttft_full_reuse(hit_tokens.max(1), 0, cfg.device)
                        + perf.ttft_full_prefill(miss_tokens + cfg.query_tokens);
                    (t, perf.ttft_full_prefill(miss_tokens + cfg.query_tokens))
                } else {
                    // CacheBlend admissions go through the engine's delay
                    // model rather than re-deriving it here.
                    let cost = blend_admission(
                        perf,
                        cfg.device,
                        cfg.recompute_ratio,
                        hit_tokens,
                        miss_tokens,
                        cfg.query_tokens,
                    );
                    (cost.ttft_s, cost.gpu_s)
                }
            }
        };
        Admission {
            ttft_work_s,
            gpu_work_s,
            decode_s: cfg.decode_tokens as f64 * perf.decode_time_per_token(),
            lookups,
            hits,
            failed: false,
        }
    }

    fn summary(&self) -> BackendSummary {
        BackendSummary {
            peak_store_bytes: self.store.peak,
            evictions: self.store.evictions,
        }
    }
}

/// The real-engine backend: simulated chunk ids are materialized as
/// registered chunks on the service's engine, every request is served
/// through the [`EngineService`] scheduler, and the admission cost is the
/// measured wall-clock TTFT split from the response's breakdown.
pub struct EngineBackend {
    service: EngineService,
    chunk_map: HashMap<u64, ChunkId>,
    query: Vec<TokenId>,
    max_new_tokens: usize,
}

impl EngineBackend {
    /// Wraps a running service. Chunks are registered lazily as simulated
    /// ids first appear, so the engine's store starts cold exactly like
    /// the analytic store does.
    pub fn new(service: EngineService) -> Self {
        let v = service.engine().model().cfg.vocab.clone();
        let query = vec![
            v.id(TokenKind::Query),
            v.id(TokenKind::Entity(0)),
            v.id(TokenKind::Attr(0)),
            v.id(TokenKind::QMark),
        ];
        Self {
            service,
            chunk_map: HashMap::new(),
            query,
            max_new_tokens: 4,
        }
    }

    /// The standard closed-loop configuration: a fresh engine for
    /// `profile` behind a **single-worker** service — one serially-busy
    /// worker, matching the simulator's single-GPU queueing model.
    pub fn single_worker(profile: cb_model::ModelProfile) -> Self {
        let engine = cb_core::engine::EngineBuilder::new(profile)
            .build()
            .expect("default engine configuration builds");
        Self::new(EngineService::new(
            engine,
            cb_core::scheduler::ServiceConfig::default().workers(1),
        ))
    }

    /// The continuous-batching closed-loop arm: `workers` prefill threads
    /// feeding a decoder thread that steps up to `decode_batch` sequences
    /// together (see [`cb_core::scheduler::ServiceConfig::decode_batch`]).
    /// One request's blend recompute overlaps other requests' decode, so
    /// this is the arm that measures iteration-level scheduling rather
    /// than a serially-busy GPU.
    pub fn batched(profile: cb_model::ModelProfile, workers: usize, decode_batch: usize) -> Self {
        let engine = cb_core::engine::EngineBuilder::new(profile)
            .build()
            .expect("default engine configuration builds");
        Self::new(EngineService::new(
            engine,
            cb_core::scheduler::ServiceConfig::default()
                .workers(workers.max(1))
                .decode_batch(decode_batch),
        ))
    }

    /// The disk-resident closed-loop arm: same single-worker service, but
    /// the engine's store is a small RAM tier over a persistent,
    /// device-throttled disk tier under `dir` — chunk KV genuinely spills
    /// to segment files and is streamed back through the pipelined loader,
    /// so the measured TTFTs carry real (emulated-device) storage latency.
    pub fn single_worker_on_disk(
        profile: cb_model::ModelProfile,
        dir: impl Into<std::path::PathBuf>,
        device: cb_storage::DeviceKind,
    ) -> Self {
        let engine = cb_core::engine::EngineBuilder::new(profile)
            .storage(
                cb_core::engine::StorageConfig::default()
                    .tier(cb_storage::DeviceKind::CpuRam, 128 << 10)
                    .disk_tier_opts(device, 1 << 30, dir, true),
            )
            .build()
            .expect("disk-tier engine configuration builds");
        Self::new(EngineService::new(
            engine,
            cb_core::scheduler::ServiceConfig::default().workers(1),
        ))
    }

    /// The wrapped service (for stats inspection after a run).
    pub fn service(&self) -> &EngineService {
        &self.service
    }

    /// Deterministic token content for a simulated chunk id: distinct ids
    /// yield distinct token sequences (so distinct content hashes) for any
    /// universe below `n_entities²`.
    fn chunk_tokens(&self, sim_id: u64) -> Vec<TokenId> {
        let v = &self.service.engine().model().cfg.vocab;
        let (ne, na, nv) = (
            v.n_entities() as u64,
            v.n_attrs() as u64,
            v.n_values() as u64,
        );
        vec![
            v.id(TokenKind::Entity((sim_id % ne) as u32)),
            v.id(TokenKind::Entity(((sim_id / ne) % ne) as u32)),
            v.id(TokenKind::Attr((sim_id % na) as u32)),
            v.id(TokenKind::Value((sim_id % nv) as u32)),
            v.id(TokenKind::Sep),
        ]
    }

    /// Maps a simulated id to a lazily-registered chunk: the tokens enter
    /// the engine's registry but no KV is precomputed, so the first
    /// *serve* naming this chunk pays the miss (precompute) inside the
    /// measured admission — the same first-touch cost the analytic store
    /// charges.
    fn register_cold(&mut self, sim_id: u64, tokens: &[TokenId]) -> ChunkId {
        if let Some(&id) = self.chunk_map.get(&sim_id) {
            return id;
        }
        let id = self
            .service
            .engine()
            .register_chunk_lazy(tokens)
            .expect("synthesized chunk tokens are non-empty");
        self.chunk_map.insert(sim_id, id);
        id
    }

    fn chunk_id(&mut self, sim_id: u64) -> ChunkId {
        if let Some(&id) = self.chunk_map.get(&sim_id) {
            return id;
        }
        let tokens = self.chunk_tokens(sim_id);
        self.register_cold(sim_id, &tokens)
    }

    /// Measures the warm per-request service time (prefill + decode) in
    /// seconds: serves one probe request twice and reports the second,
    /// store-warm measurement. Use it to normalize rate grids against
    /// saturation, like the analytic arm normalizes to the modeled
    /// full-prefill time.
    ///
    /// The probe's chunks are built from `Filler` tokens, which
    /// [`Self::chunk_tokens`] never emits, so no workload id can alias a
    /// probe chunk's content hash — a later run's cold-start behavior is
    /// untouched.
    pub fn warm_service_time_s(&mut self) -> f64 {
        let probe_sim_ids = [u64::MAX - 3, u64::MAX - 2, u64::MAX - 1, u64::MAX];
        let v = self.service.engine().model().cfg.vocab.clone();
        for (j, &sim_id) in probe_sim_ids.iter().enumerate() {
            let tokens = vec![
                v.id(TokenKind::Filler(j as u32)),
                v.id(TokenKind::Filler((j + 1) as u32)),
                v.id(TokenKind::Value(j as u32)),
                v.id(TokenKind::Sep),
            ];
            self.register_cold(sim_id, &tokens);
        }
        let probe = Request {
            arrival_s: 0.0,
            chunk_ids: probe_sim_ids.to_vec(),
        };
        self.serve(&probe);
        let warm = self.serve(&probe);
        (warm.ttft_work_s + warm.decode_s).max(1e-6)
    }
}

impl ServingBackend for EngineBackend {
    fn name(&self) -> &'static str {
        "engine"
    }

    fn serve(&mut self, req: &Request) -> Admission {
        let ids: Vec<ChunkId> = req.chunk_ids.iter().map(|&c| self.chunk_id(c)).collect();
        let request =
            EngineRequest::new(ids, self.query.clone()).max_new_tokens(self.max_new_tokens);
        let stream = self.service.submit_stream(request);
        let mut resp = None;
        for event in stream {
            match event {
                Event::Done(r) => resp = Some(r),
                // A failed request stays observable without aborting the
                // run: the simulator counts it in ServingStats::failures
                // and the service's own `failed` counter records it — the
                // scheduler's panic containment is not undone here.
                Event::Failed(_) => return Admission::failure(),
                _ => {}
            }
        }
        let resp = resp.expect("service produced no terminal event");
        let (lookups, hits) = resp.chunk_sources.iter().fold((0, 0), |(l, h), s| match s {
            cb_core::engine::ChunkSource::Hit { .. } => (l + 1, h + 1),
            cb_core::engine::ChunkSource::Precomputed => (l + 1, h),
        });
        let ttft_s = resp
            .ttft
            .total
            .saturating_sub(resp.ttft.decode)
            .as_secs_f64();
        Admission {
            ttft_work_s: ttft_s,
            // The worker thread is busy for the whole prefill (loading
            // overlap is already inside the measurement).
            gpu_work_s: ttft_s,
            decode_s: resp.ttft.decode.as_secs_f64(),
            lookups,
            hits,
            failed: false,
        }
    }

    fn summary(&self) -> BackendSummary {
        let store = self.service.engine().store();
        BackendSummary {
            peak_store_bytes: store.peak_bytes(),
            evictions: store.stats().evictions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_model::ModelProfile;

    #[test]
    fn engine_backend_measures_real_ttft_and_hits() {
        let mut backend = EngineBackend::single_worker(ModelProfile::Tiny);
        let req = Request {
            arrival_s: 0.0,
            chunk_ids: vec![3, 5, 9],
        };
        let cold = backend.serve(&req);
        let warm = backend.serve(&req);
        assert_eq!(cold.lookups, 3);
        assert_eq!(
            cold.hits, 0,
            "first touch pays the miss, like the analytic store"
        );
        assert_eq!(warm.hits, 3, "second touch is store-warm");
        assert!(cold.ttft_work_s > 0.0);
        assert!(warm.ttft_work_s > 0.0);
        assert_eq!(backend.service().stats().completed, 2);
        assert!(backend.summary().peak_store_bytes > 0);
    }

    #[test]
    fn disk_backend_arm_serves_from_spilled_tiers() {
        let dir = std::env::temp_dir().join(format!(
            "cb-serving-disk-{}-{}",
            std::process::id(),
            line!()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut backend = EngineBackend::single_worker_on_disk(
            ModelProfile::Tiny,
            &dir,
            cb_storage::DeviceKind::NvmeSsd,
        );
        let req = Request {
            arrival_s: 0.0,
            chunk_ids: (0..6).collect(), // enough chunks to overflow RAM
        };
        let cold = backend.serve(&req);
        let warm = backend.serve(&req);
        assert!(!cold.failed && !warm.failed);
        assert_eq!(warm.hits, 6, "second touch is store-warm");
        let store = backend.service().engine().store();
        assert_eq!(store.n_tiers(), 2);
        assert!(
            store.stats().spills > 0 || store.tier_len(1) > 0,
            "working set must have reached the disk tier"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn warm_service_time_is_positive_and_store_warm() {
        let mut backend = EngineBackend::single_worker(ModelProfile::Tiny);
        let s = backend.warm_service_time_s();
        assert!(s > 0.0);
        assert_eq!(backend.service().stats().completed, 2);
    }

    #[test]
    fn batched_backend_serves_and_completes_like_single_worker() {
        let mut backend = EngineBackend::batched(ModelProfile::Tiny, 2, 4);
        let req = Request {
            arrival_s: 0.0,
            chunk_ids: vec![3, 5, 9],
        };
        let cold = backend.serve(&req);
        let warm = backend.serve(&req);
        assert!(!cold.failed && !warm.failed);
        assert_eq!(warm.hits, 3, "second touch is store-warm");
        assert!(
            warm.decode_s > 0.0,
            "decode time comes from the decoder thread"
        );
        assert_eq!(backend.service().stats().completed, 2);
    }

    #[test]
    fn distinct_sim_ids_map_to_distinct_chunks() {
        let mut backend = EngineBackend::single_worker(ModelProfile::Tiny);
        let ids: Vec<ChunkId> = (0..200).map(|i| backend.chunk_id(i)).collect();
        let distinct: std::collections::HashSet<_> = ids.iter().collect();
        assert_eq!(distinct.len(), 200);
    }
}
