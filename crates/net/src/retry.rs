//! [`RetryPolicy`]: the one place the control plane's timeout and
//! backoff knobs live.
//!
//! Three parties share the same policy shape:
//!
//! - the [`Gateway`](crate::gateway::Gateway) uses `rpc_timeout` for
//!   registration/status/drain RPCs and `backoff(n)` to pace
//!   mid-stream request retries after a worker death;
//! - [`NetClient`](crate::client::NetClient) uses `rpc_timeout` for its
//!   RPCs and `backoff(n)` to pace reconnect attempts across its ordered
//!   endpoint list;
//! - `cb_worker --retry-attach` uses `backoff(n)` between gateway
//!   re-attach attempts.
//!
//! Backoff is **capped exponential**: attempt `n` (1-based) waits
//! `backoff_base × 2^(n-1)`, clamped to `backoff_cap`. Attempt 0 waits
//! nothing.

use std::time::Duration;

/// Timeout and backoff knobs for every retrying path in the control
/// plane (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// How long a request/reply RPC (chunk registration, status, drain)
    /// waits for its reply before failing with a named timeout error.
    pub rpc_timeout: Duration,
    /// Mid-stream retries (gateway) or reconnect attempts (client,
    /// worker) beyond this count give up and surface the failure.
    pub max_retries: u32,
    /// First retry's backoff; doubles per attempt.
    pub backoff_base: Duration,
    /// Upper bound on any single backoff wait.
    pub backoff_cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            rpc_timeout: Duration::from_secs(60),
            max_retries: 3,
            backoff_base: Duration::from_millis(25),
            backoff_cap: Duration::from_secs(1),
        }
    }
}

impl RetryPolicy {
    /// Sets the RPC reply timeout.
    pub fn rpc_timeout(mut self, d: Duration) -> Self {
        self.rpc_timeout = d;
        self
    }

    /// Sets the retry ceiling.
    pub fn max_retries(mut self, n: u32) -> Self {
        self.max_retries = n;
        self
    }

    /// Sets the first retry's backoff (doubles per attempt).
    pub fn backoff_base(mut self, d: Duration) -> Self {
        self.backoff_base = d;
        self
    }

    /// Sets the backoff cap.
    pub fn backoff_cap(mut self, d: Duration) -> Self {
        self.backoff_cap = d;
        self
    }

    /// The wait before retry attempt `n` (1-based): capped exponential,
    /// `backoff_base × 2^(n-1)` clamped to `backoff_cap`. Attempt 0
    /// waits nothing.
    pub fn backoff(&self, attempt: u32) -> Duration {
        if attempt == 0 {
            return Duration::ZERO;
        }
        let factor = 1u32.checked_shl(attempt - 1).unwrap_or(u32::MAX);
        self.backoff_base
            .saturating_mul(factor)
            .min(self.backoff_cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_capped_exponential() {
        let p = RetryPolicy::default()
            .backoff_base(Duration::from_millis(10))
            .backoff_cap(Duration::from_millis(75));
        assert_eq!(p.backoff(0), Duration::ZERO);
        assert_eq!(p.backoff(1), Duration::from_millis(10));
        assert_eq!(p.backoff(2), Duration::from_millis(20));
        assert_eq!(p.backoff(3), Duration::from_millis(40));
        assert_eq!(p.backoff(4), Duration::from_millis(75), "cap binds");
        assert_eq!(p.backoff(64), Duration::from_millis(75), "no overflow");
    }
}
