//! The packed log-structured persistent tier: append-only segment logs
//! with an in-memory index and background compaction.
//!
//! PR 4's file-per-chunk `<key>.seg` layout pays one inode and one
//! `open()` per entry; at 10⁶+ chunks that is inode churn, directory-walk
//! recovery, and zero read locality. This backend packs many records into
//! a handful of append-only **log files** instead:
//!
//! ```text
//! <dir>/00000001.cblog           (exclusive handles)
//! <dir>/<nonce:016x>-00000003.cblog  (shared handles: per-handle series)
//!
//! record: magic u32 | kind u8 | pad u8×3 | key u64 | payload_len u64
//!         payload (payload_len bytes)
//!         checksum u64   (word-wise FNV over header + payload)
//! ```
//!
//! `kind` is 1 for a put, 2 for a tombstone (zero-length payload). The
//! **in-memory index** maps key → (log, offset, len) and is rebuilt by a
//! sequential scan of every log at startup — logs replay in `(seq, nonce)`
//! order, later records superseding earlier ones and tombstones deleting.
//! A **torn tail** (a crash mid-append) is truncated back to the last
//! valid record instead of rejecting the whole log, so one lost append
//! never takes 10³ good records with it.
//!
//! **Group commit.** [`SegmentLogBackend::put`] stages bytes in a pending
//! map and queues them to a flusher thread, exactly like the
//! file-per-chunk backend — but the flusher drains its whole queue per
//! wakeup and appends the batch to the active log with **one** write call,
//! so a registration burst of 10⁴ chunks costs ~10⁴ fewer syscalls and no
//! renames. The active log rotates (seals) at
//! [`SegmentLogConfig::rotate_bytes`].
//!
//! **Background compaction** ([`crate::compact`]) rewrites the live
//! records of tombstone-heavy sealed logs into a fresh log
//! (temp-file + rename, crash-safe at every step) and deletes the victim,
//! reclaiming dead bytes. See the `compact` module docs for the replay-
//! ordering argument.
//!
//! **Shared directories** preserve the cluster tier semantics of the
//! file-per-chunk backend: each handle appends to its *own* log series
//! (handle-unique nonce prefix), [`StorageBackend::discover`] re-scans
//! sibling series incrementally so entries persisted by another replica
//! become servable without a reopen, and [`StorageBackend::forget`]
//! releases only this handle's claim — the record stays on disk (and
//! stays *live* for the compactor, so a sibling's copy is never rewritten
//! away underneath it). Shared handles never truncate or compact a
//! foreign series, and leave foreign `.ctmp` files alone (they may be a
//! live sibling's in-flight compaction).

use std::collections::{BTreeMap, HashMap};
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::thread::JoinHandle;

use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::backend::{
    BackendError, BytesStream, IoCounters, IoOps, MaintenanceStats, ReadStream, StorageBackend,
    Throttle,
};
use crate::checksum::fnv64;
use crate::compact;

pub(crate) const REC_MAGIC: u32 = 0x4342_4c52; // "CBLR"
pub(crate) const KIND_PUT: u8 = 1;
pub(crate) const KIND_TOMB: u8 = 2;
/// Bytes before the payload: magic, kind + padding, key, payload_len.
pub(crate) const REC_HEADER: usize = 24;
/// Full framing overhead of one record (header + trailing checksum).
pub(crate) const REC_FRAME: usize = REC_HEADER + 8;

/// Identity of one log file: `(seq, nonce)` — replay order is `seq` first
/// so a compaction output (allocated below the rotated active log) lands
/// in the right place, `nonce` second for cross-handle determinism.
pub(crate) type FileKey = (u64, u64);

/// Tuning knobs for the log store.
#[derive(Clone, Copy, Debug)]
pub struct SegmentLogConfig {
    /// Seal the active log and start a new one past this many bytes.
    pub rotate_bytes: u64,
    /// Compact a sealed log once this fraction of its bytes is dead.
    pub compact_min_garbage: f64,
    /// Never compact logs smaller than this (the reclaim is not worth the
    /// rewrite).
    pub compact_min_bytes: u64,
    /// Run the compactor automatically after write batches. Disable for
    /// deterministic tests that drive [`SegmentLogBackend::compact_now`].
    pub auto_compact: bool,
}

impl Default for SegmentLogConfig {
    fn default() -> Self {
        Self {
            rotate_bytes: 8 << 20,
            compact_min_garbage: 0.5,
            compact_min_bytes: 1 << 12,
            auto_compact: true,
        }
    }
}

/// Where one durable record lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct RecordLoc {
    pub(crate) file: FileKey,
    /// Offset of the payload (the record header sits `REC_HEADER` before).
    pub(crate) payload_off: u64,
    pub(crate) len: u64,
}

impl RecordLoc {
    pub(crate) fn frame_len(&self) -> u64 {
        self.len + REC_FRAME as u64
    }
}

/// One key's index state: staged in RAM or durable in a log.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Slot {
    Pending { gen: u64, len: u64 },
    Stored(RecordLoc),
}

impl Slot {
    fn len(&self) -> u64 {
        match self {
            Slot::Pending { len, .. } => *len,
            Slot::Stored(loc) => loc.len,
        }
    }
}

#[derive(Debug)]
pub(crate) struct LogInfo {
    pub(crate) path: PathBuf,
    /// Cached read handle (records are `pread` through it — no per-read
    /// `open`). Lazily opened for foreign series.
    pub(crate) file: Option<Arc<fs::File>>,
    /// File length in bytes.
    pub(crate) len: u64,
    /// Bytes (frames) of records this handle still references. Only
    /// meaningful for own-series logs — the compactor's garbage signal.
    pub(crate) live: u64,
    /// Shared mode: how far this (foreign) series has been scanned for
    /// discovery; a torn/incomplete tail record may complete later.
    pub(crate) scan_pos: u64,
}

#[derive(Debug, Default)]
pub(crate) struct LogCounters {
    pub(crate) compactions: u64,
    pub(crate) reclaimed_bytes: u64,
    pub(crate) rewritten_bytes: u64,
    pub(crate) corrupt_dropped: u64,
}

#[derive(Debug)]
pub(crate) struct LogState {
    pub(crate) index: HashMap<u64, Slot>,
    /// Writes staged but not yet appended, newest generation wins.
    pending: HashMap<u64, (u64, Bytes)>,
    /// Shared mode: records on the medium this handle has seen but not
    /// claimed — sibling-series records awaiting `discover`, and own
    /// records released by `forget` (re-adoptable later).
    pub(crate) unclaimed: HashMap<u64, RecordLoc>,
    /// Live tombstones (needed until no older log can hold a shadowed
    /// put): key → the log holding the tombstone record.
    pub(crate) tombstones: HashMap<u64, FileKey>,
    pub(crate) logs: BTreeMap<FileKey, LogInfo>,
    /// The log currently receiving appends.
    pub(crate) active: FileKey,
    pub(crate) next_seq: u64,
    /// Payload bytes across indexed entries (pending included).
    pub(crate) used: u64,
    next_gen: u64,
    write_error: Option<String>,
    /// A compaction pass is in flight (single-flight guard).
    pub(crate) compacting: bool,
    pub(crate) counters: LogCounters,
}

impl LogState {
    /// Marks a durable record no longer referenced by the index.
    pub(crate) fn mark_dead(&mut self, loc: RecordLoc) {
        if let Some(info) = self.logs.get_mut(&loc.file) {
            info.live = info.live.saturating_sub(loc.frame_len());
        }
    }

    /// Marks a tombstone record (a bare frame) in `fk` no longer live —
    /// a newer put superseded it, so compaction may drop it.
    pub(crate) fn mark_tombstone_dead(&mut self, fk: FileKey) {
        if let Some(info) = self.logs.get_mut(&fk) {
            info.live = info.live.saturating_sub(REC_FRAME as u64);
        }
    }
}

pub(crate) enum FlushMsg {
    Append {
        key: u64,
        gen: u64,
        kind: u8,
        bytes: Bytes,
    },
    /// Seal the active log and continue appending into `to_seq` (the
    /// compactor reserves `to_seq` above its output log so every append
    /// issued after the ack replays *after* the compacted records).
    Rotate {
        to_seq: u64,
        done: Sender<()>,
    },
    Barrier(Sender<()>),
}

pub(crate) enum CompactMsg {
    Tick,
    Stop,
}

/// Aggregate counters of the log store (see [`SegmentLogBackend::log_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LogStats {
    /// Log files currently on disk (active included).
    pub logs: usize,
    /// Completed compaction passes.
    pub compactions: u64,
    /// Dead bytes reclaimed by compaction.
    pub reclaimed_bytes: u64,
    /// Live bytes rewritten by compaction.
    pub rewritten_bytes: u64,
    /// Records dropped because their checksum failed during compaction.
    pub corrupt_dropped: u64,
    /// Torn tail records truncated away by startup recovery.
    pub torn_truncated: u64,
    /// Bytes of live (referenced) record frames across own logs.
    pub live_bytes: u64,
    /// Total bytes across all log files.
    pub file_bytes: u64,
}

/// Persistent packed-log storage backend (see module docs).
pub struct SegmentLogBackend {
    dir: PathBuf,
    throttle: Option<Throttle>,
    shared: bool,
    /// Handle-unique series id (0 for exclusive handles: bare filenames).
    nonce: u64,
    cfg: SegmentLogConfig,
    pub(crate) state: Arc<Mutex<LogState>>,
    pub(crate) io: Arc<IoCounters>,
    tx: Option<Sender<FlushMsg>>,
    flusher: Option<JoinHandle<()>>,
    compact_tx: Option<Sender<CompactMsg>>,
    compactor: Option<JoinHandle<()>>,
    recovered: usize,
    dropped: usize,
    torn_truncated: u64,
}

impl std::fmt::Debug for SegmentLogBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentLogBackend")
            .field("dir", &self.dir)
            .field("shared", &self.shared)
            .field("entries", &self.len())
            .finish()
    }
}

pub(crate) fn log_path(dir: &Path, file: FileKey) -> PathBuf {
    let (seq, nonce) = file;
    if nonce == 0 {
        dir.join(format!("{seq:08}.cblog"))
    } else {
        dir.join(format!("{nonce:016x}-{seq:08}.cblog"))
    }
}

fn parse_log_name(name: &str) -> Option<FileKey> {
    let stem = name.strip_suffix(".cblog")?;
    match stem.split_once('-') {
        Some((nonce, seq)) => Some((
            seq.parse::<u64>().ok()?,
            u64::from_str_radix(nonce, 16).ok()?,
        )),
        None => Some((stem.parse::<u64>().ok()?, 0)),
    }
}

/// Appends one framed record to `buf`; returns the payload offset
/// relative to the start of `buf`.
pub(crate) fn frame_record(buf: &mut Vec<u8>, kind: u8, key: u64, payload: &[u8]) -> u64 {
    let start = buf.len();
    buf.extend_from_slice(&REC_MAGIC.to_le_bytes());
    buf.push(kind);
    buf.extend_from_slice(&[0u8; 3]);
    buf.extend_from_slice(&key.to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    buf.extend_from_slice(payload);
    let sum = fnv64(&buf[start..]);
    buf.extend_from_slice(&sum.to_le_bytes());
    (start + REC_HEADER) as u64
}

/// A record parsed out of a log scan.
pub(crate) struct ScanRecord {
    pub(crate) key: u64,
    pub(crate) kind: u8,
    pub(crate) payload_off: u64,
    pub(crate) len: u64,
}

/// Walks `raw` from `from`, yielding every fully-valid record. Returns
/// the records and the offset of the first invalid/incomplete byte (the
/// valid prefix length when it equals `raw.len()`).
pub(crate) fn scan_records(raw: &[u8], from: u64) -> (Vec<ScanRecord>, u64) {
    let mut out = Vec::new();
    let mut pos = from as usize;
    while pos + REC_FRAME <= raw.len() {
        let h = &raw[pos..pos + REC_HEADER];
        let magic = u32::from_le_bytes(h[0..4].try_into().unwrap());
        let kind = h[4];
        let key = u64::from_le_bytes(h[8..16].try_into().unwrap());
        let plen = u64::from_le_bytes(h[16..24].try_into().unwrap()) as usize;
        if magic != REC_MAGIC || !(kind == KIND_PUT || kind == KIND_TOMB) {
            break;
        }
        let Some(end) = pos.checked_add(REC_FRAME).and_then(|e| e.checked_add(plen)) else {
            break;
        };
        if end > raw.len() {
            break; // incomplete tail record
        }
        let body = pos + REC_HEADER + plen;
        let declared = u64::from_le_bytes(raw[body..body + 8].try_into().unwrap());
        if fnv64(&raw[pos..body]) != declared {
            break;
        }
        out.push(ScanRecord {
            key,
            kind,
            payload_off: (pos + REC_HEADER) as u64,
            len: plen as u64,
        });
        pos = end;
    }
    (out, pos as u64)
}

/// Positional read through a cached handle (no seek, no reopen).
pub(crate) fn read_exact_at(file: &fs::File, buf: &mut [u8], off: u64) -> std::io::Result<()> {
    #[cfg(unix)]
    {
        use std::os::unix::fs::FileExt;
        file.read_exact_at(buf, off)
    }
    #[cfg(not(unix))]
    {
        use std::io::{Read, Seek, SeekFrom};
        let mut f = file.try_clone()?;
        f.seek(SeekFrom::Start(off))?;
        f.read_exact(buf)
    }
}

impl SegmentLogBackend {
    /// Opens (or creates) a log dir with exclusive ownership: every log is
    /// scanned, the index rebuilt, torn tails truncated to the last valid
    /// record, and stale compaction temp files deleted.
    pub fn new(dir: impl Into<PathBuf>, throttle: Option<Throttle>) -> Result<Self, BackendError> {
        Self::open(dir, throttle, false, SegmentLogConfig::default())
    }

    /// Opens a log dir that other live handles also append to. This handle
    /// writes its own log series; sibling series are scanned at startup
    /// and re-scanned incrementally by [`StorageBackend::discover`].
    /// Foreign series are never truncated, compacted, or deleted.
    pub fn open_shared(
        dir: impl Into<PathBuf>,
        throttle: Option<Throttle>,
    ) -> Result<Self, BackendError> {
        Self::open(dir, throttle, true, SegmentLogConfig::default())
    }

    /// Opens with explicit tuning (tests shrink `rotate_bytes` and drive
    /// compaction by hand).
    pub fn with_config(
        dir: impl Into<PathBuf>,
        throttle: Option<Throttle>,
        shared: bool,
        cfg: SegmentLogConfig,
    ) -> Result<Self, BackendError> {
        Self::open(dir, throttle, shared, cfg)
    }

    fn open(
        dir: impl Into<PathBuf>,
        throttle: Option<Throttle>,
        shared: bool,
        cfg: SegmentLogConfig,
    ) -> Result<Self, BackendError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| BackendError::Io(e.to_string()))?;
        let io = Arc::new(IoCounters::default());

        static NONCE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let nonce = if shared {
            (std::process::id() as u64) << 20
                | NONCE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        } else {
            0
        };

        // --- Startup scan -------------------------------------------------
        let mut files: Vec<FileKey> = Vec::new();
        let mut dropped = 0usize;
        io.open();
        let listing = fs::read_dir(&dir).map_err(|e| BackendError::Io(e.to_string()))?;
        for entry in listing.flatten() {
            let path = entry.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if name.ends_with(".ctmp") {
                // Exclusive owner: a leftover compaction temp is crash
                // debris (the rename never happened, so the victim log is
                // intact). Shared: it may be a sibling's live compaction.
                if !shared {
                    io.delete();
                    let _ = fs::remove_file(&path);
                    dropped += 1;
                }
                continue;
            }
            if let Some(key) = parse_log_name(name) {
                files.push(key);
            }
        }
        files.sort_unstable();

        let mut state = LogState {
            index: HashMap::new(),
            pending: HashMap::new(),
            unclaimed: HashMap::new(),
            tombstones: HashMap::new(),
            logs: BTreeMap::new(),
            active: (0, 0),
            next_seq: 1,
            used: 0,
            next_gen: 0,
            write_error: None,
            compacting: false,
            counters: LogCounters::default(),
        };
        let mut recovered = 0usize;
        let mut torn_truncated = 0u64;
        for fk in files {
            let path = log_path(&dir, fk);
            io.open();
            io.read();
            let raw = match fs::read(&path) {
                Ok(raw) => raw,
                Err(_) => {
                    dropped += 1;
                    continue;
                }
            };
            let (records, valid_len) = scan_records(&raw, 0);
            let mut file_len = raw.len() as u64;
            if valid_len < file_len {
                if shared && fk.1 != nonce {
                    // A foreign torn tail may be a sibling's append still
                    // in flight — leave the bytes, remember where to
                    // resume scanning.
                } else {
                    // Own (or exclusively owned) log: a crash tore the
                    // tail. Truncate back to the last valid record so the
                    // good prefix keeps serving.
                    io.open();
                    io.write();
                    let ok = fs::OpenOptions::new()
                        .write(true)
                        .open(&path)
                        .and_then(|f| f.set_len(valid_len));
                    if ok.is_ok() {
                        file_len = valid_len;
                        torn_truncated += 1;
                    }
                }
            }
            state.logs.insert(
                fk,
                LogInfo {
                    path,
                    file: None,
                    len: file_len,
                    live: 0,
                    scan_pos: valid_len,
                },
            );
            state.next_seq = state.next_seq.max(fk.0 + 1);
            for r in records {
                let loc = RecordLoc {
                    file: fk,
                    payload_off: r.payload_off,
                    len: r.len,
                };
                match r.kind {
                    KIND_PUT => {
                        if let Some(Slot::Stored(old)) = state.index.get(&r.key).copied() {
                            state.mark_dead(old);
                            state.used -= old.len;
                        }
                        state.index.insert(r.key, Slot::Stored(loc));
                        state.used += r.len;
                        if let Some(info) = state.logs.get_mut(&fk) {
                            info.live += loc.frame_len();
                        }
                        if let Some(tfk) = state.tombstones.remove(&r.key) {
                            state.mark_tombstone_dead(tfk);
                        }
                        recovered += 1;
                    }
                    _ => {
                        if let Some(Slot::Stored(old)) = state.index.remove(&r.key) {
                            state.mark_dead(old);
                            state.used -= old.len;
                        }
                        if let Some(old) = state.tombstones.insert(r.key, fk) {
                            state.mark_tombstone_dead(old);
                        }
                        if let Some(info) = state.logs.get_mut(&fk) {
                            info.live += REC_FRAME as u64; // the tombstone itself is live
                        }
                    }
                }
            }
        }

        // Fresh active log above everything already on disk.
        let active = (state.next_seq, nonce);
        state.next_seq += 1;
        let active_path = log_path(&dir, active);
        io.open();
        let file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(&active_path)
            .map_err(|e| BackendError::Io(e.to_string()))?;
        state.logs.insert(
            active,
            LogInfo {
                path: active_path,
                file: Some(Arc::new(file)),
                len: 0,
                live: 0,
                scan_pos: 0,
            },
        );
        state.active = active;

        let state = Arc::new(Mutex::new(state));

        // --- Compactor ---------------------------------------------------
        let (flush_tx, flush_rx) = unbounded::<FlushMsg>();
        let (compact_tx, compact_rx) = unbounded::<CompactMsg>();
        let compactor = {
            let ctx = compact::CompactorCtx {
                state: Arc::clone(&state),
                dir: dir.clone(),
                nonce,
                cfg,
                io: Arc::clone(&io),
                flusher: flush_tx.clone(),
            };
            std::thread::Builder::new()
                .name("cb-log-compactor".to_string())
                .spawn(move || 'outer: loop {
                    match compact_rx.recv() {
                        Err(_) | Ok(CompactMsg::Stop) => break,
                        Ok(CompactMsg::Tick) => {
                            // Coalesce queued ticks into one pass.
                            while let Ok(msg) = compact_rx.try_recv() {
                                if matches!(msg, CompactMsg::Stop) {
                                    break 'outer;
                                }
                            }
                            while compact::compact_one(&ctx, None).is_some() {}
                        }
                    }
                })
                .map_err(|e| BackendError::Io(e.to_string()))?
        };

        // --- Flusher (group commit) --------------------------------------
        let flusher = {
            let state = Arc::clone(&state);
            let io = Arc::clone(&io);
            let dir = dir.clone();
            let auto_tick = cfg.auto_compact.then(|| compact_tx.clone());
            let rotate_bytes = cfg.rotate_bytes;
            std::thread::Builder::new()
                .name("cb-log-flusher".to_string())
                .spawn(move || {
                    run_flusher(flush_rx, state, io, dir, nonce, rotate_bytes, auto_tick)
                })
                .map_err(|e| BackendError::Io(e.to_string()))?
        };

        Ok(Self {
            dir,
            throttle,
            shared,
            nonce,
            cfg,
            state,
            io,
            tx: Some(flush_tx),
            flusher: Some(flusher),
            compact_tx: Some(compact_tx),
            compactor: Some(compactor),
            recovered,
            dropped,
            torn_truncated,
        })
    }

    /// The directory holding this backend's log files.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Records re-indexed by startup recovery.
    pub fn recovered_records(&self) -> usize {
        self.recovered
    }

    /// Crash debris (stale `.ctmp`, unreadable logs) removed at startup.
    pub fn dropped_debris(&self) -> usize {
        self.dropped
    }

    /// Torn tail records truncated away at startup.
    pub fn torn_truncations(&self) -> u64 {
        self.torn_truncated
    }

    /// Snapshot of the filesystem-operation counters.
    pub fn io_ops(&self) -> IoOps {
        self.io.snapshot()
    }

    /// Aggregate log/compaction counters.
    pub fn log_stats(&self) -> LogStats {
        let s = self.state.lock();
        LogStats {
            logs: s.logs.len(),
            compactions: s.counters.compactions,
            reclaimed_bytes: s.counters.reclaimed_bytes,
            rewritten_bytes: s.counters.rewritten_bytes,
            corrupt_dropped: s.counters.corrupt_dropped,
            torn_truncated: self.torn_truncated,
            live_bytes: s.logs.values().map(|l| l.live).sum(),
            file_bytes: s.logs.values().map(|l| l.len).sum(),
        }
    }

    /// Runs compaction passes on the caller's thread until no sealed log
    /// exceeds the garbage threshold; returns how many logs were
    /// compacted. Tests use this for determinism; production relies on the
    /// background compactor.
    pub fn compact_now(&self) -> usize {
        let ctx = self.compactor_ctx();
        let mut n = 0;
        while compact::compact_one(&ctx, None).is_some() {
            n += 1;
        }
        n
    }

    /// Test hook: run one compaction pass but abort ("crash") after
    /// rewriting `abort_after_records` live records, leaving the `.ctmp`
    /// behind and the victim untouched. Returns `true` if a victim was
    /// selected (and therefore a temp file was left).
    #[doc(hidden)]
    pub fn compact_once_aborting(&self, abort_after_records: usize) -> bool {
        let ctx = self.compactor_ctx();
        compact::compact_one(&ctx, Some(abort_after_records)).is_some()
    }

    fn compactor_ctx(&self) -> compact::CompactorCtx {
        compact::CompactorCtx {
            state: Arc::clone(&self.state),
            dir: self.dir.clone(),
            nonce: self.nonce,
            cfg: self.cfg,
            io: Arc::clone(&self.io),
            flusher: self.tx.as_ref().expect("flusher alive").clone(),
        }
    }

    /// Cached (or lazily opened) read handle for a log.
    fn log_file(&self, fk: FileKey) -> Result<Option<Arc<fs::File>>, BackendError> {
        let mut s = self.state.lock();
        let Some(info) = s.logs.get_mut(&fk) else {
            return Ok(None);
        };
        if let Some(f) = &info.file {
            return Ok(Some(Arc::clone(f)));
        }
        let path = info.path.clone();
        self.io.open();
        match fs::File::open(&path) {
            Ok(f) => {
                let f = Arc::new(f);
                // Re-check: the map cannot have changed the entry (we held
                // the lock), so just cache.
                if let Some(info) = s.logs.get_mut(&fk) {
                    info.file = Some(Arc::clone(&f));
                }
                Ok(Some(f))
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(BackendError::Io(e.to_string())),
        }
    }

    /// Reads and fully verifies one record's payload.
    fn read_record(&self, key: u64, loc: RecordLoc) -> Result<Option<Bytes>, BackendError> {
        let Some(file) = self.log_file(loc.file)? else {
            return Ok(None); // log vanished (sibling compaction)
        };
        let frame = loc.frame_len() as usize;
        let mut buf = vec![0u8; frame];
        self.io.read();
        if read_exact_at(&file, &mut buf, loc.payload_off - REC_HEADER as u64).is_err() {
            return Err(BackendError::Corrupt);
        }
        if let Some(t) = self.throttle {
            t.charge_access();
            t.charge_bytes(frame);
        }
        let body = frame - 8;
        let declared = u64::from_le_bytes(buf[body..].try_into().unwrap());
        let rec_key = u64::from_le_bytes(buf[8..16].try_into().unwrap());
        if fnv64(&buf[..body]) != declared || rec_key != key || buf[4] != KIND_PUT {
            return Err(BackendError::Corrupt);
        }
        buf.drain(..REC_HEADER);
        buf.truncate(loc.len as usize);
        Ok(Some(Bytes::from(buf)))
    }

    /// Drops a key from the index, marking its durable record dead and
    /// (when `tombstone`) queueing a tombstone append.
    fn drop_key(&self, key: u64, tombstone: bool) -> bool {
        let mut s = self.state.lock();
        s.pending.remove(&key);
        let present = match s.index.remove(&key) {
            Some(slot) => {
                s.used -= slot.len();
                if let Slot::Stored(loc) = slot {
                    s.mark_dead(loc);
                }
                true
            }
            None => false,
        };
        let unclaimed = match s.unclaimed.remove(&key) {
            Some(loc) => {
                // An own-series record released by `forget` stayed live so
                // siblings could keep serving it; a true delete ends that
                // and frees the frame for compaction. Foreign-series live
                // counts are not tracked by this handle.
                if loc.file.1 == self.nonce {
                    s.mark_dead(loc);
                }
                true
            }
            None => false,
        };
        drop(s);
        if tombstone && (present || unclaimed) {
            let _ = self
                .tx
                .as_ref()
                .expect("flusher alive")
                .send(FlushMsg::Append {
                    key,
                    gen: 0,
                    kind: KIND_TOMB,
                    bytes: Bytes::new(),
                });
        }
        present || unclaimed
    }

    /// Shared mode: scan sibling series for records appended since the
    /// last scan, filling the unclaimed map.
    fn rescan_foreign(&self) {
        // New foreign log files since the last look.
        self.io.open();
        let Ok(listing) = fs::read_dir(&self.dir) else {
            return;
        };
        let mut found: Vec<FileKey> = Vec::new();
        for entry in listing.flatten() {
            let Some(name) = entry.file_name().to_str().map(str::to_string) else {
                continue;
            };
            if let Some(fk) = parse_log_name(&name) {
                found.push(fk);
            }
        }
        found.sort_unstable();
        {
            let mut s = self.state.lock();
            for fk in found {
                s.logs.entry(fk).or_insert_with(|| LogInfo {
                    path: log_path(&self.dir, fk),
                    file: None,
                    len: 0,
                    live: 0,
                    scan_pos: 0,
                });
            }
        }
        // Incrementally scan every foreign series past its scan position.
        let targets: Vec<(FileKey, u64)> = {
            let s = self.state.lock();
            s.logs
                .iter()
                .filter(|(fk, _)| fk.1 != self.nonce)
                .map(|(&fk, info)| (fk, info.scan_pos))
                .collect()
        };
        for (fk, from) in targets {
            let Ok(Some(file)) = self.log_file(fk) else {
                continue;
            };
            let Ok(meta) = file.metadata() else { continue };
            if meta.len() <= from {
                continue;
            }
            let mut buf = vec![0u8; (meta.len() - from) as usize];
            self.io.read();
            if read_exact_at(&file, &mut buf, from).is_err() {
                continue;
            }
            let (records, end) = scan_records(&buf, 0);
            let mut s = self.state.lock();
            if let Some(info) = s.logs.get_mut(&fk) {
                info.scan_pos = from + end;
                info.len = info.len.max(from + end);
            }
            for r in records {
                let loc = RecordLoc {
                    file: fk,
                    payload_off: from + r.payload_off,
                    len: r.len,
                };
                match r.kind {
                    KIND_PUT => {
                        if !s.index.contains_key(&r.key) {
                            s.unclaimed.insert(r.key, loc);
                        }
                    }
                    _ => {
                        s.unclaimed.remove(&r.key);
                    }
                }
            }
        }
    }

    /// Moves an unclaimed record into the index (room rules are the
    /// tiering policy's job, not the backend's).
    fn claim(&self, key: u64) -> Option<u64> {
        let mut s = self.state.lock();
        if let Some(slot) = s.index.get(&key) {
            return Some(slot.len());
        }
        let loc = s.unclaimed.remove(&key)?;
        s.index.insert(key, Slot::Stored(loc));
        s.used += loc.len;
        if loc.file.1 == self.nonce {
            // Re-adopted own record: it stayed live through forget, so the
            // live accounting is already right.
        }
        Some(loc.len)
    }
}

#[allow(clippy::too_many_arguments)]
fn run_flusher(
    rx: Receiver<FlushMsg>,
    state: Arc<Mutex<LogState>>,
    io: Arc<IoCounters>,
    dir: PathBuf,
    nonce: u64,
    rotate_bytes: u64,
    auto_tick: Option<Sender<CompactMsg>>,
) {
    while let Ok(first) = rx.recv() {
        // Group commit: greedily drain whatever else is queued and append
        // the whole batch with one write call.
        let mut batch = vec![first];
        let mut batch_bytes = batch
            .iter()
            .map(|m| match m {
                FlushMsg::Append { bytes, .. } => bytes.len(),
                _ => 0,
            })
            .sum::<usize>();
        while batch_bytes < rotate_bytes as usize {
            match rx.try_recv() {
                Ok(msg) => {
                    if let FlushMsg::Append { bytes, .. } = &msg {
                        batch_bytes += bytes.len();
                    }
                    batch.push(msg);
                }
                Err(_) => break,
            }
        }
        let mut appends: Vec<(u64, u64, u8, Bytes)> = Vec::new();
        let mut barriers: Vec<Sender<()>> = Vec::new();
        let mut rotations: Vec<(u64, Sender<()>)> = Vec::new();
        for msg in batch {
            match msg {
                FlushMsg::Append {
                    key,
                    gen,
                    kind,
                    bytes,
                } => appends.push((key, gen, kind, bytes)),
                FlushMsg::Barrier(done) => barriers.push(done),
                FlushMsg::Rotate { to_seq, done } => rotations.push((to_seq, done)),
            }
        }

        if !appends.is_empty() {
            // Serialize the batch against the active log's current length.
            let (active, file, base) = {
                let s = state.lock();
                let info = &s.logs[&s.active];
                (
                    s.active,
                    Arc::clone(info.file.as_ref().expect("active log open")),
                    info.len,
                )
            };
            let mut buf = Vec::new();
            let mut locs = Vec::with_capacity(appends.len());
            for (key, gen, kind, bytes) in &appends {
                let off = frame_record(&mut buf, *kind, *key, bytes);
                locs.push((
                    *key,
                    *gen,
                    *kind,
                    RecordLoc {
                        file: active,
                        payload_off: base + off,
                        len: bytes.len() as u64,
                    },
                ));
            }
            io.write();
            let res = (&*file).write_all(&buf);
            let mut s = state.lock();
            match res {
                Err(e) => {
                    // Keep pending entries serving from RAM and surface
                    // the error at the next flush(). A failed write_all
                    // can still have appended part of the batch (e.g.
                    // ENOSPC), leaving the file longer than the recorded
                    // len — and every later offset computed from that len
                    // pointing at the wrong bytes. Resync by truncating
                    // back to the recorded length; if even that fails,
                    // record the real length and seal the damaged log
                    // (startup replay treats the partial tail as torn).
                    s.write_error.get_or_insert_with(|| e.to_string());
                    io.write();
                    if file.set_len(base).is_err() {
                        if let Ok(meta) = file.metadata() {
                            if let Some(info) = s.logs.get_mut(&active) {
                                info.len = meta.len();
                            }
                        }
                        let to = s.next_seq;
                        s.next_seq += 1;
                        rotate_active(&mut s, &io, &dir, nonce, to);
                    }
                }
                Ok(()) => {
                    if let Some(info) = s.logs.get_mut(&active) {
                        info.len = base + buf.len() as u64;
                    }
                    for (key, gen, kind, loc) in locs {
                        if kind == KIND_TOMB {
                            if let Some(old) = s.tombstones.insert(key, loc.file) {
                                s.mark_tombstone_dead(old);
                            }
                            if let Some(info) = s.logs.get_mut(&loc.file) {
                                info.live += REC_FRAME as u64;
                            }
                            continue;
                        }
                        if s.pending.get(&key).is_some_and(|&(g, _)| g == gen) {
                            s.pending.remove(&key);
                        }
                        match s.index.get(&key) {
                            Some(Slot::Pending { gen: g, .. }) if *g == gen => {
                                s.index.insert(key, Slot::Stored(loc));
                                if let Some(tfk) = s.tombstones.remove(&key) {
                                    s.mark_tombstone_dead(tfk);
                                }
                                if let Some(info) = s.logs.get_mut(&loc.file) {
                                    info.live += loc.frame_len();
                                }
                            }
                            // Superseded by a newer staged write, or
                            // removed while in flight: the record is born
                            // dead (not counted live) and compaction will
                            // reclaim it.
                            _ => {}
                        }
                    }
                    // Size-based rotation.
                    if s.logs[&s.active].len >= rotate_bytes {
                        let to = s.next_seq;
                        s.next_seq += 1;
                        rotate_active(&mut s, &io, &dir, nonce, to);
                    }
                }
            }
        }
        for (to_seq, done) in rotations {
            let mut s = state.lock();
            rotate_active(&mut s, &io, &dir, nonce, to_seq);
            drop(s);
            let _ = done.send(());
        }
        for done in barriers {
            let _ = done.send(());
        }
        if let Some(t) = &auto_tick {
            let _ = t.send(CompactMsg::Tick);
        }
    }
}

/// Seals the active log (deleting it when empty) and opens `to_seq`.
/// Rotation is strictly forward: a stale request (the compactor reserved
/// its sequences, then a size-based rotation moved the active log past
/// them before the `Rotate` was processed) is a no-op — moving the active
/// log *backward* would let later appends land below records already
/// written to a higher-seq log, which replay after them and shadow them
/// at startup. The compactor's invariant still holds on the skip: the
/// current active seq is already above its reserved output log.
fn rotate_active(s: &mut LogState, io: &IoCounters, dir: &Path, nonce: u64, to_seq: u64) {
    let old = s.active;
    if to_seq <= old.0 {
        return; // stale request — never rotate backward
    }
    let fresh = (to_seq, nonce);
    if s.logs.contains_key(&fresh) {
        return; // already rotated past (coalesced requests)
    }
    let path = log_path(dir, fresh);
    io.open();
    let Ok(file) = fs::OpenOptions::new()
        .create(true)
        .append(true)
        .read(true)
        .open(&path)
    else {
        return; // keep appending to the old active; flush() surfaces errors
    };
    s.next_seq = s.next_seq.max(to_seq + 1);
    s.logs.insert(
        fresh,
        LogInfo {
            path,
            file: Some(Arc::new(file)),
            len: 0,
            live: 0,
            scan_pos: 0,
        },
    );
    s.active = fresh;
    // An empty sealed log holds nothing: delete rather than accumulate.
    if let Some(info) = s.logs.get(&old) {
        if info.len == 0 {
            let path = info.path.clone();
            s.logs.remove(&old);
            io.delete();
            let _ = fs::remove_file(path);
        }
    }
}

impl StorageBackend for SegmentLogBackend {
    fn name(&self) -> String {
        format!("seglog:{}", self.dir.display())
    }

    fn persistent(&self) -> bool {
        true
    }

    fn shared(&self) -> bool {
        self.shared
    }

    fn put(&self, key: u64, bytes: Bytes) -> Result<(), BackendError> {
        let mut s = self.state.lock();
        s.next_gen += 1;
        let gen = s.next_gen;
        if let Some(old) = s.index.insert(
            key,
            Slot::Pending {
                gen,
                len: bytes.len() as u64,
            },
        ) {
            s.used -= old.len();
            if let Slot::Stored(loc) = old {
                s.mark_dead(loc);
            }
        }
        s.used += bytes.len() as u64;
        s.unclaimed.remove(&key);
        s.pending.insert(key, (gen, bytes.clone()));
        drop(s);
        self.tx
            .as_ref()
            .expect("flusher alive")
            .send(FlushMsg::Append {
                key,
                gen,
                kind: KIND_PUT,
                bytes,
            })
            .map_err(|_| BackendError::Io("flusher thread gone".to_string()))
    }

    fn get(&self, key: u64) -> Result<Option<Bytes>, BackendError> {
        // A reader can race a compaction delete: it copies the location,
        // the compactor repoints the index and unlinks the victim. The
        // re-check below notices the repoint and retries at the new home.
        for _ in 0..4 {
            let loc = {
                let s = self.state.lock();
                match s.index.get(&key) {
                    Some(Slot::Pending { .. }) => {
                        return Ok(s.pending.get(&key).map(|(_, b)| b.clone()));
                    }
                    Some(Slot::Stored(loc)) => *loc,
                    None => return Ok(None),
                }
            };
            match self.read_record(key, loc) {
                Ok(Some(b)) => return Ok(Some(b)),
                Ok(None) => {
                    let mut s = self.state.lock();
                    match s.index.get(&key) {
                        Some(Slot::Stored(l)) if *l == loc => {
                            // Still mapped to the vanished log: the claim
                            // is stale (a sibling compacted its series).
                            s.index.remove(&key);
                            s.used -= loc.len;
                            s.mark_dead(loc);
                            return Ok(None);
                        }
                        Some(_) => continue, // repointed — retry there
                        None => return Ok(None),
                    }
                }
                Err(BackendError::Corrupt) => {
                    // A corrupt record can never serve again: evict the
                    // claim so the tier above repairs by re-precompute.
                    self.drop_key(key, false);
                    return Err(BackendError::Corrupt);
                }
                Err(e) => return Err(e),
            }
        }
        Ok(None)
    }

    fn open_read(&self, key: u64) -> Result<Option<Box<dyn ReadStream + Send>>, BackendError> {
        let loc = {
            let s = self.state.lock();
            match s.index.get(&key) {
                Some(Slot::Pending { .. }) => {
                    return Ok(s
                        .pending
                        .get(&key)
                        .map(|(_, b)| Box::new(BytesStream::new(b.clone())) as _));
                }
                Some(Slot::Stored(loc)) => *loc,
                None => return Ok(None),
            }
        };
        let Some(file) = self.log_file(loc.file)? else {
            return Ok(None);
        };
        // Verify the record header before handing out a stream (payload
        // integrity is the caller's per-block checksums).
        let mut header = [0u8; REC_HEADER];
        self.io.read();
        if read_exact_at(&file, &mut header, loc.payload_off - REC_HEADER as u64).is_err() {
            self.drop_key(key, false);
            return Err(BackendError::Corrupt);
        }
        let magic = u32::from_le_bytes(header[0..4].try_into().unwrap());
        let rec_key = u64::from_le_bytes(header[8..16].try_into().unwrap());
        let plen = u64::from_le_bytes(header[16..24].try_into().unwrap());
        if magic != REC_MAGIC || header[4] != KIND_PUT || rec_key != key || plen != loc.len {
            self.drop_key(key, false);
            return Err(BackendError::Corrupt);
        }
        if let Some(t) = self.throttle {
            t.charge_access();
        }
        Ok(Some(Box::new(LogStream {
            file,
            pos: loc.payload_off,
            remaining: loc.len,
            payload_len: loc.len,
            throttle: self.throttle,
            io: Arc::clone(&self.io),
        })))
    }

    fn discover(&self, key: u64) -> Option<u64> {
        if let Some(len) = self.claim(key) {
            return Some(len);
        }
        if !self.shared {
            return None; // exclusive owner: the index is the truth
        }
        self.rescan_foreign();
        self.claim(key)
    }

    fn remove(&self, key: u64) -> bool {
        self.drop_key(key, true)
    }

    fn forget(&self, key: u64) -> bool {
        if !self.shared {
            return self.drop_key(key, true);
        }
        // Shared dir: release only this handle's claim. The record stays
        // on disk — and stays *live* (not compacted away) because sibling
        // handles may still be serving it; it lands in the unclaimed map
        // so a later discover can re-adopt it without a rescan.
        let mut s = self.state.lock();
        s.pending.remove(&key);
        match s.index.remove(&key) {
            Some(slot) => {
                s.used -= slot.len();
                if let Slot::Stored(loc) = slot {
                    s.unclaimed.insert(key, loc);
                }
                true
            }
            None => false,
        }
    }

    fn contains(&self, key: u64) -> bool {
        self.state.lock().index.contains_key(&key)
    }

    fn entries(&self) -> Vec<(u64, u64)> {
        self.state
            .lock()
            .index
            .iter()
            .map(|(&k, slot)| (k, slot.len()))
            .collect()
    }

    fn len(&self) -> usize {
        self.state.lock().index.len()
    }

    fn used_bytes(&self) -> u64 {
        self.state.lock().used
    }

    fn flush(&self) -> Result<(), BackendError> {
        let (done_tx, done_rx) = bounded::<()>(1);
        self.tx
            .as_ref()
            .expect("flusher alive")
            .send(FlushMsg::Barrier(done_tx))
            .map_err(|_| BackendError::Io("flusher thread gone".to_string()))?;
        done_rx
            .recv()
            .map_err(|_| BackendError::Io("flusher thread gone".to_string()))?;
        match self.state.lock().write_error.take() {
            Some(e) => Err(BackendError::Io(e)),
            None => Ok(()),
        }
    }

    fn maintenance(&self) -> Option<MaintenanceStats> {
        let s = self.state.lock();
        Some(MaintenanceStats {
            compactions: s.counters.compactions,
            reclaimed_bytes: s.counters.reclaimed_bytes,
        })
    }
}

impl Drop for SegmentLogBackend {
    fn drop(&mut self) {
        // The compactor holds a flusher sender, so it must exit first —
        // it may be waiting on a rotation ack, which needs the flusher
        // alive.
        if let Some(t) = self.compact_tx.take() {
            let _ = t.send(CompactMsg::Stop);
        }
        if let Some(h) = self.compactor.take() {
            let _ = h.join();
        }
        // Closing the append channel drains every queued write first, so
        // dropping the backend is itself a flush.
        self.tx.take();
        if let Some(h) = self.flusher.take() {
            let _ = h.join();
        }
    }
}

/// Sequential reader over one record's payload through a cached handle.
struct LogStream {
    file: Arc<fs::File>,
    pos: u64,
    remaining: u64,
    payload_len: u64,
    throttle: Option<Throttle>,
    io: Arc<IoCounters>,
}

impl ReadStream for LogStream {
    fn payload_len(&self) -> u64 {
        self.payload_len
    }

    fn read_next(&mut self, len: usize) -> Result<Bytes, BackendError> {
        let take = (len as u64).min(self.remaining) as usize;
        let mut buf = vec![0u8; take];
        if take > 0 {
            self.io.read();
            read_exact_at(&self.file, &mut buf, self.pos)
                .map_err(|e| BackendError::Io(e.to_string()))?;
        }
        self.pos += take as u64;
        self.remaining -= take as u64;
        if let Some(t) = self.throttle {
            t.charge_bytes(take);
        }
        Ok(Bytes::from(buf))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn test_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "cb-seglog-{}-{}-{}",
            std::process::id(),
            tag,
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn tiny_cfg() -> SegmentLogConfig {
        SegmentLogConfig {
            rotate_bytes: 512,
            compact_min_garbage: 0.3,
            compact_min_bytes: 64,
            auto_compact: false,
        }
    }

    #[test]
    fn put_get_roundtrips_through_pending_and_log() {
        let dir = test_dir("roundtrip");
        let b = SegmentLogBackend::new(&dir, None).unwrap();
        let payload = Bytes::from((0u8..200).collect::<Vec<_>>());
        b.put(42, payload.clone()).unwrap();
        assert_eq!(b.get(42).unwrap().unwrap(), payload, "served from pending");
        b.flush().unwrap();
        assert_eq!(b.get(42).unwrap().unwrap(), payload, "served from the log");
        assert_eq!(b.used_bytes(), 200);
        assert!(b.contains(42));
        assert!(b.remove(42));
        assert!(b.get(42).unwrap().is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn many_entries_share_few_files() {
        let dir = test_dir("packed");
        let b =
            SegmentLogBackend::with_config(&dir, None, false, SegmentLogConfig::default()).unwrap();
        for k in 0..500u64 {
            b.put(k, Bytes::from(vec![k as u8; 64])).unwrap();
        }
        b.flush().unwrap();
        let files = fs::read_dir(&dir).unwrap().count();
        assert!(files <= 2, "500 entries packed into {files} files");
        for k in (0..500u64).step_by(97) {
            assert_eq!(b.get(k).unwrap().unwrap().as_ref(), &[k as u8; 64][..]);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn entries_survive_reopen() {
        let dir = test_dir("reopen");
        {
            let b = SegmentLogBackend::new(&dir, None).unwrap();
            b.put(1, Bytes::from(vec![9u8; 64])).unwrap();
            b.put(2, Bytes::from(vec![7u8; 32])).unwrap();
            b.put(1, Bytes::from(vec![8u8; 64])).unwrap(); // overwrite
            assert!(b.remove(2));
        }
        let b = SegmentLogBackend::new(&dir, None).unwrap();
        assert_eq!(b.len(), 1, "overwrite + tombstone replayed");
        assert_eq!(b.get(1).unwrap().unwrap().as_ref(), &[8u8; 64][..]);
        assert!(!b.contains(2), "tombstone deletes across restart");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let dir = test_dir("torn");
        {
            let b = SegmentLogBackend::new(&dir, None).unwrap();
            for k in 0..8u64 {
                b.put(k, Bytes::from(vec![k as u8; 40])).unwrap();
            }
        }
        // Tear the tail: append half a record's worth of garbage, then
        // also chop into the last real record of the (single) log file.
        let log = fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .map(|e| e.path())
            .find(|p| p.extension().is_some_and(|e| e == "cblog"))
            .unwrap();
        let raw = fs::read(&log).unwrap();
        fs::write(&log, &raw[..raw.len() - 17]).unwrap();

        let b = SegmentLogBackend::new(&dir, None).unwrap();
        assert_eq!(b.torn_truncations(), 1);
        assert_eq!(b.len(), 7, "all but the torn record recover");
        for k in 0..7u64 {
            assert_eq!(b.get(k).unwrap().unwrap().as_ref(), &[k as u8; 40][..]);
        }
        assert!(!b.contains(7), "the torn record is gone");
        // The truncated log must append cleanly again (fresh active log).
        b.put(99, Bytes::from(vec![5u8; 16])).unwrap();
        b.flush().unwrap();
        drop(b);
        let b = SegmentLogBackend::new(&dir, None).unwrap();
        assert!(b.contains(99));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_seals_and_replays_in_order() {
        let dir = test_dir("rotate");
        let b = SegmentLogBackend::with_config(&dir, None, false, tiny_cfg()).unwrap();
        for round in 0..4u8 {
            for k in 0..16u64 {
                b.put(k, Bytes::from(vec![round; 48])).unwrap();
            }
            b.flush().unwrap();
        }
        assert!(
            b.log_stats().logs >= 2,
            "48-byte × 64 appends must rotate a 512-byte log"
        );
        drop(b);
        let b = SegmentLogBackend::new(&dir, None).unwrap();
        for k in 0..16u64 {
            assert_eq!(
                b.get(k).unwrap().unwrap().as_ref(),
                &[3u8; 48][..],
                "latest generation wins the replay"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_record_read_errors_and_is_dropped() {
        let dir = test_dir("corrupt");
        let b = SegmentLogBackend::new(&dir, None).unwrap();
        b.put(5, Bytes::from(vec![3u8; 100])).unwrap();
        b.put(6, Bytes::from(vec![4u8; 100])).unwrap();
        b.flush().unwrap();
        let stats = b.log_stats();
        let log = {
            let s = b.state.lock();
            s.logs[&s.active].path.clone()
        };
        let mut raw = fs::read(&log).unwrap();
        raw[REC_HEADER + 10] ^= 0xFF; // payload byte of record 1 (key 5)
        fs::write(&log, &raw).unwrap();
        assert_eq!(b.get(5).unwrap_err(), BackendError::Corrupt);
        assert!(!b.contains(5), "corrupt record evicted");
        assert_eq!(
            b.get(6).unwrap().unwrap().as_ref(),
            &[4u8; 100][..],
            "neighbours in the same log are unharmed"
        );
        assert_eq!(stats.compactions, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stream_reads_payload_in_installments() {
        let dir = test_dir("stream");
        let b = SegmentLogBackend::new(&dir, None).unwrap();
        let payload: Vec<u8> = (0u8..=99).collect();
        b.put(7, Bytes::from(payload.clone())).unwrap();
        b.flush().unwrap();
        let mut s = b.open_read(7).unwrap().unwrap();
        assert_eq!(s.payload_len(), 100);
        let mut got = Vec::new();
        loop {
            let chunk = s.read_next(32).unwrap();
            if chunk.is_empty() {
                break;
            }
            got.extend_from_slice(&chunk);
        }
        assert_eq!(got, payload);
        assert!(b.open_read(404).unwrap().is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_reclaims_dead_bytes_and_keeps_live_records() {
        let dir = test_dir("compact");
        let b = SegmentLogBackend::with_config(&dir, None, false, tiny_cfg()).unwrap();
        for k in 0..32u64 {
            b.put(k, Bytes::from(vec![k as u8; 64])).unwrap();
        }
        b.flush().unwrap();
        // Kill 75% of them; the sealed logs become garbage-heavy.
        for k in 0..32u64 {
            if k % 4 != 0 {
                assert!(b.remove(k));
            }
        }
        b.flush().unwrap();
        let before = b.log_stats();
        let n = b.compact_now();
        assert!(n > 0, "garbage-heavy logs must be selected");
        let after = b.log_stats();
        assert!(after.compactions >= n as u64);
        assert!(after.reclaimed_bytes > 0);
        assert!(
            after.file_bytes < before.file_bytes,
            "disk footprint must shrink: {} -> {}",
            before.file_bytes,
            after.file_bytes
        );
        for k in (0..32u64).step_by(4) {
            assert_eq!(
                b.get(k).unwrap().unwrap().as_ref(),
                &[k as u8; 64][..],
                "live record {k} survives compaction"
            );
        }
        // And the compacted state replays correctly.
        drop(b);
        let b = SegmentLogBackend::new(&dir, None).unwrap();
        assert_eq!(b.len(), 8);
        for k in (0..32u64).step_by(4) {
            assert_eq!(b.get(k).unwrap().unwrap().as_ref(), &[k as u8; 64][..]);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn auto_compaction_triggers_in_background() {
        let dir = test_dir("autocompact");
        let mut cfg = tiny_cfg();
        cfg.auto_compact = true;
        let b = SegmentLogBackend::with_config(&dir, None, false, cfg).unwrap();
        for k in 0..64u64 {
            b.put(k, Bytes::from(vec![k as u8; 64])).unwrap();
        }
        b.flush().unwrap();
        for k in 0..64u64 {
            if k % 8 != 0 {
                b.remove(k);
            }
        }
        b.flush().unwrap();
        // The flusher ticks the compactor after each batch; give it a
        // moment.
        let mut compactions = 0;
        for _ in 0..200 {
            compactions = b.log_stats().compactions;
            if compactions > 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert!(compactions > 0, "background compactor never ran");
        for k in (0..64u64).step_by(8) {
            assert_eq!(b.get(k).unwrap().unwrap().as_ref(), &[k as u8; 64][..]);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_ctmp_is_removed_at_exclusive_startup() {
        let dir = test_dir("ctmp");
        fs::create_dir_all(&dir).unwrap();
        let stale = dir.join("00000009.cblog.ctmp");
        fs::write(&stale, b"half-written compaction output").unwrap();
        let b = SegmentLogBackend::new(&dir, None).unwrap();
        assert_eq!(b.dropped_debris(), 1);
        assert!(!stale.exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn shared_handles_discover_each_others_records() {
        let dir = test_dir("shared");
        let a = SegmentLogBackend::open_shared(&dir, None).unwrap();
        let b = SegmentLogBackend::open_shared(&dir, None).unwrap();
        let payload = Bytes::from(vec![5u8; 80]);
        a.put(77, payload.clone()).unwrap();
        a.flush().unwrap();
        assert!(!b.contains(77), "b has not indexed a's record yet");
        assert_eq!(b.discover(77), Some(80));
        assert!(b.contains(77));
        assert_eq!(b.get(77).unwrap().unwrap(), payload);
        // forget releases only b's claim; a still serves, and b can
        // re-adopt without a rescan.
        assert!(b.forget(77));
        assert!(!b.contains(77));
        assert_eq!(a.get(77).unwrap().unwrap(), payload);
        assert_eq!(b.discover(77), Some(80), "re-adopted from unclaimed");
        // An id nowhere on the medium stays undiscoverable.
        assert_eq!(b.discover(404), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn shared_tombstone_hides_record_from_later_discovery() {
        let dir = test_dir("shared-tomb");
        let a = SegmentLogBackend::open_shared(&dir, None).unwrap();
        a.put(9, Bytes::from(vec![1u8; 32])).unwrap();
        assert!(a.remove(9));
        a.flush().unwrap();
        let b = SegmentLogBackend::open_shared(&dir, None).unwrap();
        assert!(!b.contains(9), "tombstone replayed at startup");
        assert_eq!(b.discover(9), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn exclusive_handle_never_discovers_foreign_records() {
        let dir = test_dir("excl");
        {
            let w = SegmentLogBackend::new(&dir, None).unwrap();
            w.put(4, Bytes::from(vec![1u8; 32])).unwrap();
        }
        let later = SegmentLogBackend::new(&dir, None).unwrap();
        assert_eq!(later.discover(4), Some(32), "indexed at startup");
        {
            let sneaky = SegmentLogBackend::open_shared(&dir, None).unwrap();
            sneaky.put(5, Bytes::from(vec![2u8; 16])).unwrap();
        }
        assert_eq!(
            later.discover(5),
            None,
            "exclusive handles trust only their own index"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn overwrite_replaces_and_reaccounts() {
        let dir = test_dir("overwrite");
        let b = SegmentLogBackend::new(&dir, None).unwrap();
        b.put(9, Bytes::from(vec![1u8; 100])).unwrap();
        b.put(9, Bytes::from(vec![2u8; 50])).unwrap();
        b.flush().unwrap();
        assert_eq!(b.used_bytes(), 50);
        assert_eq!(b.get(9).unwrap().unwrap().as_ref(), &[2u8; 50][..]);
        assert_eq!(b.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn remove_during_pending_write_does_not_resurrect() {
        let dir = test_dir("race");
        {
            let b = SegmentLogBackend::new(&dir, None).unwrap();
            b.put(3, Bytes::from(vec![4u8; 64])).unwrap();
            assert!(b.remove(3));
            b.flush().unwrap();
            assert!(!b.contains(3));
        }
        let b = SegmentLogBackend::new(&dir, None).unwrap();
        assert!(!b.contains(3), "tombstone outlives the racing append");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_rotation_request_never_moves_active_backward() {
        let dir = test_dir("fwd-rotate");
        let b = SegmentLogBackend::new(&dir, None).unwrap();
        let send_rotate = |to_seq: u64| {
            let (done_tx, done_rx) = bounded::<()>(1);
            let sent = b.tx.as_ref().unwrap().send(FlushMsg::Rotate {
                to_seq,
                done: done_tx,
            });
            assert!(sent.is_ok());
            done_rx.recv().unwrap();
        };
        // A size-based rotation has already moved the active log to seq 8
        // when a compactor's stale Rotate{to_seq: 7} arrives.
        send_rotate(8);
        assert_eq!(b.state.lock().active.0, 8);
        b.put(1, Bytes::from(vec![3u8; 32])).unwrap(); // older write → log 8
        b.flush().unwrap();
        send_rotate(7);
        assert_eq!(b.state.lock().active.0, 8, "rotation must be forward-only");
        b.put(1, Bytes::from(vec![4u8; 32])).unwrap(); // newer write
        b.flush().unwrap();
        drop(b);
        // Backward rotation would put the newer write in log 7, where the
        // older record in log 8 shadows it during seq-ordered replay.
        let b = SegmentLogBackend::new(&dir, None).unwrap();
        assert_eq!(
            b.get(1).unwrap().unwrap().as_ref(),
            &[4u8; 32][..],
            "newest write must win the replay"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_batch_write_resyncs_the_active_log() {
        let dir = test_dir("werr");
        let b = SegmentLogBackend::new(&dir, None).unwrap();
        b.put(1, Bytes::from(vec![1u8; 32])).unwrap();
        b.flush().unwrap();
        // Sabotage the active log's handle: a read-only handle makes the
        // next batch write fail — and set_len too, forcing the
        // seal-and-rotate fallback.
        {
            let mut s = b.state.lock();
            let active = s.active;
            let info = s.logs.get_mut(&active).unwrap();
            let ro = fs::File::open(&info.path).unwrap();
            info.file = Some(Arc::new(ro));
        }
        b.put(2, Bytes::from(vec![2u8; 32])).unwrap();
        assert!(b.flush().is_err(), "write failure surfaces at flush");
        // The failed append still serves from RAM, and the store accepts
        // (and correctly indexes) appends into the fresh active log.
        assert_eq!(b.get(2).unwrap().unwrap().as_ref(), &[2u8; 32][..]);
        b.put(3, Bytes::from(vec![3u8; 32])).unwrap();
        b.flush().unwrap();
        assert_eq!(b.get(1).unwrap().unwrap().as_ref(), &[1u8; 32][..]);
        assert_eq!(b.get(3).unwrap().unwrap().as_ref(), &[3u8; 32][..]);
        drop(b);
        let b = SegmentLogBackend::new(&dir, None).unwrap();
        assert_eq!(b.get(1).unwrap().unwrap().as_ref(), &[1u8; 32][..]);
        assert_eq!(b.get(3).unwrap().unwrap().as_ref(), &[3u8; 32][..]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn superseding_put_reclaims_tombstone_live_bytes() {
        let dir = test_dir("tomb-live");
        let b = SegmentLogBackend::with_config(&dir, None, false, tiny_cfg()).unwrap();
        b.put(1, Bytes::from(vec![1u8; 64])).unwrap();
        b.flush().unwrap();
        assert!(b.remove(1));
        b.flush().unwrap();
        b.put(1, Bytes::from(vec![2u8; 64])).unwrap();
        b.flush().unwrap();
        // Only the latest put's frame is live: the first put died at the
        // tombstone, and the tombstone died when the new put superseded
        // it. Anything more under-reports garbage and delays compaction.
        let frame = 64 + REC_FRAME as u64;
        assert_eq!(b.log_stats().live_bytes, frame);
        drop(b);
        // Replay reaches the identical accounting.
        let b = SegmentLogBackend::with_config(&dir, None, false, tiny_cfg()).unwrap();
        assert_eq!(b.log_stats().live_bytes, frame);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn removing_a_forgotten_record_marks_it_dead() {
        let dir = test_dir("forget-remove");
        let a = SegmentLogBackend::open_shared(&dir, None).unwrap();
        a.put(7, Bytes::from(vec![1u8; 64])).unwrap();
        a.flush().unwrap();
        let live_claimed = a.log_stats().live_bytes;
        assert_eq!(live_claimed, 64 + REC_FRAME as u64);
        assert!(a.forget(7));
        assert_eq!(
            a.log_stats().live_bytes,
            live_claimed,
            "forget keeps the record live for siblings"
        );
        assert!(a.remove(7));
        a.flush().unwrap();
        // The record's frame is dead; only the new tombstone is live.
        assert_eq!(a.log_stats().live_bytes, REC_FRAME as u64);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn io_counters_move() {
        let dir = test_dir("io");
        let b = SegmentLogBackend::new(&dir, None).unwrap();
        for k in 0..64u64 {
            b.put(k, Bytes::from(vec![0u8; 32])).unwrap();
        }
        b.flush().unwrap();
        let after_write = b.io_ops();
        assert!(
            after_write.writes < 64,
            "group commit: 64 appends took {} writes",
            after_write.writes
        );
        for k in 0..64u64 {
            b.get(k).unwrap().unwrap();
        }
        let after_read = b.io_ops();
        assert_eq!(after_read.reads - after_write.reads, 64);
        assert_eq!(
            after_read.opens, after_write.opens,
            "reads go through cached handles — zero opens"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
