//! Seeded request-stream generation (the "extended dataset" construction).
//!
//! The paper builds its serving workload by taking 1 500 queries, having
//! GPT-4 produce 3 paraphrases of each (so 4 requests share the same
//! retrieved chunk set), and replaying 6 000 requests at a Poisson rate
//! against a chunk database. This module reproduces the *structure*:
//! a chunk universe, query groups that share top-k chunk sets, Zipf-ish
//! group popularity, and exponential inter-arrivals.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One serving request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Arrival time, seconds.
    pub arrival_s: f64,
    /// Ids of the retrieved chunks, in context order.
    pub chunk_ids: Vec<u64>,
}

/// Workload parameters.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Mean request rate (Poisson), requests/second.
    pub rate_per_s: f64,
    /// Total requests.
    pub n_requests: usize,
    /// Distinct query groups (each group shares one chunk set).
    pub n_groups: usize,
    /// Chunk universe size.
    pub n_chunks: u64,
    /// Chunks retrieved per request.
    pub chunks_per_request: usize,
    /// Zipf skew of group popularity (0 = uniform).
    pub zipf_s: f64,
    /// Shuffle each request's chunk order (the paper retrieves the top-k
    /// "in a random order" (citation 34 of the paper) — this is what breaks prefix chains while
    /// leaving per-chunk caching untouched).
    pub shuffle_order: bool,
    /// RNG seed.
    pub seed: u64,
}

impl WorkloadConfig {
    /// The figure-14 extended-dataset shape at a given rate.
    pub fn extended(rate_per_s: f64, seed: u64) -> Self {
        Self {
            rate_per_s,
            n_requests: 400,
            n_groups: 100,
            n_chunks: 600,
            chunks_per_request: 6,
            zipf_s: 0.9,
            shuffle_order: true,
            seed,
        }
    }
}

/// A generated request stream.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Requests sorted by arrival time.
    pub requests: Vec<Request>,
}

impl Workload {
    /// Generates a stream from the config.
    pub fn generate(cfg: &WorkloadConfig) -> Self {
        assert!(cfg.rate_per_s > 0.0, "rate must be positive");
        assert!(cfg.n_groups > 0 && cfg.chunks_per_request > 0);
        let mut rng = SmallRng::seed_from_u64(cfg.seed);

        // Chunk popularity is Zipf-skewed: popular chunks are retrieved by
        // *many different* queries — the property that lets per-chunk
        // caching (CacheBlend, full reuse) hit across query groups while
        // prefix caching only hits identical leading chains.
        let chunk_weights: Vec<f64> = (1..=cfg.n_chunks)
            .map(|r| 1.0 / (r as f64).powf(cfg.zipf_s))
            .collect();
        let chunk_total: f64 = chunk_weights.iter().sum();
        let pick_chunk = |rng: &mut SmallRng| -> u64 {
            let mut x = rng.random::<f64>() * chunk_total;
            for (i, w) in chunk_weights.iter().enumerate() {
                if x < *w {
                    return i as u64;
                }
                x -= w;
            }
            cfg.n_chunks - 1
        };

        // Each group owns a fixed retrieved set (sorted: document order).
        let groups: Vec<Vec<u64>> = (0..cfg.n_groups)
            .map(|_| {
                let mut set = std::collections::BTreeSet::new();
                while set.len() < cfg.chunks_per_request {
                    set.insert(pick_chunk(&mut rng));
                }
                set.into_iter().collect()
            })
            .collect();

        // Zipf-ish popularity over groups.
        let weights: Vec<f64> = (1..=cfg.n_groups)
            .map(|r| 1.0 / (r as f64).powf(cfg.zipf_s))
            .collect();
        let total: f64 = weights.iter().sum();

        let mut t = 0.0f64;
        // Separate stream so toggling `shuffle_order` does not perturb
        // arrivals or group picks.
        let mut shuffle_rng = SmallRng::seed_from_u64(cfg.seed ^ 0x5AFF_1E00);
        let mut requests = Vec::with_capacity(cfg.n_requests);
        for _ in 0..cfg.n_requests {
            // Exponential inter-arrival.
            let u: f64 = rng.random::<f64>().max(1e-12);
            t += -u.ln() / cfg.rate_per_s;
            // Weighted group pick.
            let mut x = rng.random::<f64>() * total;
            let mut g = 0;
            for (i, w) in weights.iter().enumerate() {
                if x < *w {
                    g = i;
                    break;
                }
                x -= w;
                g = i;
            }
            let mut chunk_ids = groups[g].clone();
            if cfg.shuffle_order {
                use rand::seq::SliceRandom;
                chunk_ids.shuffle(&mut shuffle_rng);
            }
            requests.push(Request {
                arrival_s: t,
                chunk_ids,
            });
        }
        Workload { requests }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = WorkloadConfig::extended(1.0, 5);
        let a = Workload::generate(&cfg);
        let b = Workload::generate(&cfg);
        assert_eq!(a.requests.len(), b.requests.len());
        assert_eq!(a.requests[10].chunk_ids, b.requests[10].chunk_ids);
    }

    #[test]
    fn arrivals_are_sorted_and_rate_roughly_matches() {
        let cfg = WorkloadConfig::extended(2.0, 5);
        let w = Workload::generate(&cfg);
        assert!(w
            .requests
            .windows(2)
            .all(|p| p[0].arrival_s <= p[1].arrival_s));
        let span = w.requests.last().unwrap().arrival_s;
        let rate = cfg.n_requests as f64 / span;
        assert!((1.2..3.2).contains(&rate), "observed rate {rate}");
    }

    #[test]
    fn requests_reuse_chunk_sets() {
        let cfg = WorkloadConfig::extended(1.0, 5);
        let w = Workload::generate(&cfg);
        let mut distinct = std::collections::HashSet::new();
        for r in &w.requests {
            let mut set = r.chunk_ids.clone();
            set.sort_unstable();
            distinct.insert(set);
        }
        assert!(
            distinct.len() <= cfg.n_groups,
            "more chunk sets than groups"
        );
        assert!(distinct.len() >= 10, "no reuse diversity");
    }

    #[test]
    fn unshuffled_chunk_ids_sorted_in_document_order() {
        let mut cfg = WorkloadConfig::extended(1.0, 5);
        cfg.shuffle_order = false;
        let w = Workload::generate(&cfg);
        for r in &w.requests {
            assert!(r.chunk_ids.windows(2).all(|p| p[0] < p[1]));
        }
    }

    #[test]
    fn shuffling_changes_order_not_sets() {
        let mut cfg = WorkloadConfig::extended(1.0, 5);
        cfg.shuffle_order = false;
        let sorted = Workload::generate(&cfg);
        cfg.shuffle_order = true;
        let shuffled = Workload::generate(&cfg);
        let mut any_reordered = false;
        for (a, b) in sorted.requests.iter().zip(shuffled.requests.iter()) {
            let mut bs = b.chunk_ids.clone();
            bs.sort_unstable();
            assert_eq!(a.chunk_ids, bs, "sets must be identical");
            any_reordered |= a.chunk_ids != b.chunk_ids;
        }
        assert!(any_reordered);
    }
}
