//! 8-bit KV cache quantization — the cold tier's wire format.
//!
//! The paper serves Yi-34B and Llama-70B with 8-bit quantization and names
//! KV-compression work (KIVI, CacheGen, …) as complementary: "CacheBlend
//! can benefit from such techniques by storing and loading less KV cache"
//! (§8). This module implements the storage side: per-row symmetric int8
//! quantization of K and V, quartering the bytes a store holds and a
//! loader moves. The compiled program's decision margins are multi-nat, so
//! blending from quantized caches preserves answers — verified by tests.
//!
//! Wire format (little-endian, the "CBQ2" magic) — deliberately the same
//! *sectioned* shape as [`crate::serialize`]'s f32 v2 format, so header
//! parsing, per-block verification, and layer streaming are shared code
//! dispatching only on the magic:
//!
//! ```text
//! magic u32 | n_layers u32 | rows u32 | width u32
//! positions rows×u64 | tokens rows×u32 | header checksum u64
//! per layer: K rows×(scale f32, width×i8),
//!            V rows×(scale f32, width×i8), layer checksum u64
//! ```
//!
//! The per-layer checksums are what lets [`crate::prefetch`] stream a
//! *quantized* entry off the cold tier one layer at a time — dequantizing
//! per layer on arrival, never materializing the whole entry first — so
//! the compute/load pipeline survives the cold tier unchanged.
//!
//! The tiered store transcodes at tier boundaries with
//! [`quantize_entry`] / [`dequantize_entry`] (demote to the cold tier /
//! promote out of it); callers of the store always see f32 entries.

use bytes::{BufMut, Bytes, BytesMut};
use cb_model::{KvCache, LayerKv};
use cb_storage::fnv64;
use cb_tensor::Matrix;

use crate::serialize::{
    header_len, parse_header, sniff_format, DecodeError, EntryFormat, EntryReader, DIMS_LEN,
};

pub(crate) const QMAGIC: u32 = 0x4342_5132; // "CBQ2"

/// Bytes of one quantized layer block: K and V each store `rows` of one
/// f32 scale plus `width` int8 codes, plus the block checksum.
pub fn q_layer_block_len(rows: usize, width: usize) -> usize {
    2 * rows * (4 + width) + 8
}

/// Total bytes of a quantized entry with the given shape.
pub fn q_entry_len(n_layers: usize, rows: usize, width: usize) -> usize {
    header_len(rows) + n_layers * q_layer_block_len(rows, width)
}

/// [`q_entry_len`] computed without overflow, for validating untrusted
/// dims against a trusted payload length before any allocation.
pub fn q_entry_len_u128(n_layers: usize, rows: usize, width: usize) -> u128 {
    let block = 2u128 * rows as u128 * (4 + width as u128) + 8;
    DIMS_LEN as u128 + rows as u128 * 12 + 8 + n_layers as u128 * block
}

/// The quantization's worst-case relative error per element: `1/254` of the
/// row's max-abs (symmetric int8 rounding).
pub const MAX_RELATIVE_ERROR: f32 = 1.0 / 254.0;

/// Quantizes one f32 row into `scale | width×i8`.
fn put_quantized_row(buf: &mut BytesMut, row: &[f32]) {
    let max = row.iter().fold(0.0f32, |a, &v| a.max(v.abs()));
    let scale = if max > 0.0 { max / 127.0 } else { 1.0 };
    buf.put_f32_le(scale);
    for &v in row {
        buf.put_i8((v / scale).round().clamp(-127.0, 127.0) as i8);
    }
}

fn put_header(buf: &mut BytesMut, n_layers: usize, rows: usize, width: usize, cache: &KvCache) {
    buf.put_u32_le(QMAGIC);
    buf.put_u32_le(n_layers as u32);
    buf.put_u32_le(rows as u32);
    buf.put_u32_le(width as u32);
    for &p in &cache.positions {
        buf.put_u64_le(p as u64);
    }
    for &t in &cache.tokens {
        buf.put_u32_le(t);
    }
    let sum = fnv64(buf);
    buf.put_u64_le(sum);
}

/// Serializes a cache with int8 quantization (≈4× smaller than
/// [`crate::serialize::encode`]; see module docs for the layout).
pub fn encode_quantized(cache: &KvCache) -> Bytes {
    let rows = cache.len();
    let width = cache.layers.first().map(|l| l.k.cols()).unwrap_or(0);
    let n_layers = cache.n_layers();
    let mut buf = BytesMut::with_capacity(q_entry_len(n_layers, rows, width));
    put_header(&mut buf, n_layers, rows, width, cache);
    for layer in &cache.layers {
        let start = buf.len();
        for r in 0..rows {
            put_quantized_row(&mut buf, layer.k.row(r));
        }
        for r in 0..rows {
            put_quantized_row(&mut buf, layer.v.row(r));
        }
        let sum = fnv64(&buf[start..]);
        buf.put_u64_le(sum);
    }
    buf.freeze()
}

/// Verifies one quantized layer block's checksum and dequantizes it into
/// `out`.
pub fn decode_quantized_block(
    block: &[u8],
    rows: usize,
    width: usize,
    out: &mut LayerKv,
) -> Result<(), DecodeError> {
    let expect = q_layer_block_len(rows, width);
    if block.len() < expect {
        return Err(DecodeError::Truncated);
    }
    let body = expect - 8;
    let declared = u64::from_le_bytes(block[body..expect].try_into().unwrap());
    if fnv64(&block[..body]) != declared {
        return Err(DecodeError::Corrupted);
    }
    let stride = 4 + width;
    let fill = |m: &mut Matrix, lo: usize| {
        // Every element is overwritten below.
        m.resize_dirty(rows, width);
        for r in 0..rows {
            let at = lo + r * stride;
            let scale = f32::from_le_bytes(block[at..at + 4].try_into().unwrap());
            for (v, &code) in m.row_mut(r).iter_mut().zip(&block[at + 4..at + 4 + width]) {
                *v = code as i8 as f32 * scale;
            }
        }
    };
    fill(&mut out.k, 0);
    fill(&mut out.v, rows * stride);
    Ok(())
}

/// Decodes a quantized entry back to an f32 cache (dequantizing).
pub fn decode_quantized(bytes: Bytes) -> Result<KvCache, DecodeError> {
    if sniff_format(&bytes)? != EntryFormat::Quantized {
        return Err(DecodeError::BadMagic);
    }
    let reader = EntryReader::new(bytes)?;
    let mut layers = Vec::with_capacity(reader.n_layers());
    for l in 0..reader.n_layers() {
        layers.push(reader.layer(l)?);
    }
    Ok(KvCache {
        layers,
        positions: reader.positions().to_vec(),
        tokens: reader.tokens().to_vec(),
    })
}

/// Rewrites a header section with a new magic (the two formats share the
/// header layout byte-for-byte, so only the magic and the checksum move).
fn transcoded_header(src: &[u8], hlen: usize, magic: u32) -> BytesMut {
    let mut buf = BytesMut::with_capacity(hlen);
    buf.put_u32_le(magic);
    buf.put_slice(&src[4..hlen - 8]);
    let sum = fnv64(&buf);
    buf.put_u64_le(sum);
    buf
}

/// Transcodes a serialized f32 entry ([`crate::serialize::encode`]) into
/// the quantized format without materializing a [`KvCache`] — the demote
/// path into the cold tier. Every source section checksum is verified as
/// it is consumed; quantized input is returned unchanged (idempotent).
pub fn quantize_entry(src: &[u8]) -> Result<Bytes, DecodeError> {
    if sniff_format(src)? == EntryFormat::Quantized {
        return Ok(Bytes::from(src));
    }
    let meta = parse_header(src)?;
    let (n_layers, rows, width) = (meta.n_layers, meta.rows, meta.width);
    if src.len() as u128 != EntryFormat::F32.entry_len_u128(n_layers, rows, width) {
        return Err(DecodeError::Truncated);
    }
    let hlen = header_len(rows);
    let mut buf = transcoded_header(src, hlen, QMAGIC);
    let src_block = EntryFormat::F32.layer_block_len(rows, width);
    let mut row_buf = vec![0.0f32; width];
    for l in 0..n_layers {
        let block = &src[hlen + l * src_block..hlen + (l + 1) * src_block];
        let body = src_block - 8;
        let declared = u64::from_le_bytes(block[body..].try_into().unwrap());
        if fnv64(&block[..body]) != declared {
            return Err(DecodeError::Corrupted);
        }
        let start = buf.len();
        for r in 0..2 * rows {
            // K rows then V rows: the f32 block is K then V contiguously.
            let at = r * width * 4;
            for (v, ch) in row_buf
                .iter_mut()
                .zip(block[at..at + width * 4].chunks_exact(4))
            {
                *v = f32::from_le_bytes(ch.try_into().unwrap());
            }
            put_quantized_row(&mut buf, &row_buf);
        }
        let sum = fnv64(&buf[start..]);
        buf.put_u64_le(sum);
    }
    Ok(buf.freeze())
}

/// Transcodes a quantized entry back to the f32 format — the promote path
/// out of the cold tier. f32 input is returned unchanged (idempotent).
/// The result decodes exactly to what the quantized entry held; the
/// quantization loss happened once, at [`quantize_entry`] time.
pub fn dequantize_entry(src: &[u8]) -> Result<Bytes, DecodeError> {
    if sniff_format(src)? == EntryFormat::F32 {
        return Ok(Bytes::from(src));
    }
    let meta = parse_header(src)?;
    let (n_layers, rows, width) = (meta.n_layers, meta.rows, meta.width);
    if src.len() as u128 != EntryFormat::Quantized.entry_len_u128(n_layers, rows, width) {
        return Err(DecodeError::Truncated);
    }
    let hlen = header_len(rows);
    let mut buf = transcoded_header(src, hlen, crate::serialize::MAGIC);
    let src_block = q_layer_block_len(rows, width);
    let stride = 4 + width;
    for l in 0..n_layers {
        let block = &src[hlen + l * src_block..hlen + (l + 1) * src_block];
        let body = src_block - 8;
        let declared = u64::from_le_bytes(block[body..].try_into().unwrap());
        if fnv64(&block[..body]) != declared {
            return Err(DecodeError::Corrupted);
        }
        let start = buf.len();
        for r in 0..2 * rows {
            let at = r * stride;
            let scale = f32::from_le_bytes(block[at..at + 4].try_into().unwrap());
            for &code in &block[at + 4..at + 4 + width] {
                buf.put_f32_le(code as i8 as f32 * scale);
            }
        }
        let sum = fnv64(&buf[start..]);
        buf.put_u64_le(sum);
    }
    Ok(buf.freeze())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precompute::precompute_chunk;
    use crate::serialize::{decode, encode, verify_entry};
    use cb_model::{Model, ModelConfig, ModelProfile};
    use cb_tokenizer::TokenKind::*;

    fn model() -> Model {
        Model::compiled(ModelConfig::standard(ModelProfile::Tiny, 11))
    }

    fn chunk_cache(m: &Model) -> KvCache {
        let v = &m.cfg.vocab;
        let toks: Vec<u32> = [
            Entity(5),
            Attr(0),
            Value(1),
            Sep,
            Ref,
            Attr(3),
            Value(9),
            Sep,
        ]
        .map(|k| v.id(k))
        .to_vec();
        precompute_chunk(m, &toks)
    }

    #[test]
    fn quantized_roundtrip_is_close() {
        let m = model();
        let cache = chunk_cache(&m);
        let back = decode_quantized(encode_quantized(&cache)).unwrap();
        assert_eq!(back.positions, cache.positions);
        assert_eq!(back.tokens, cache.tokens);
        for l in 0..cache.n_layers() {
            let max = cache.layers[l].k.max_abs();
            let d = cache.layers[l].k.frobenius_distance(&back.layers[l].k);
            // Error per element ≤ max·(1/254); Frobenius over n elements
            // ≤ max·√n/254.
            let n = (cache.layers[l].k.rows() * cache.layers[l].k.cols()) as f32;
            assert!(
                d <= max * n.sqrt() * MAX_RELATIVE_ERROR * 1.01,
                "layer {l}: error {d} exceeds bound"
            );
        }
    }

    #[test]
    fn quantized_entries_are_about_4x_smaller() {
        let m = model();
        let cache = chunk_cache(&m);
        let full = encode(&cache).len() as f64;
        let quant = encode_quantized(&cache).len() as f64;
        let ratio = full / quant;
        assert!((3.0..4.5).contains(&ratio), "compression ratio {ratio}");
    }

    #[test]
    fn corruption_is_detected() {
        let m = model();
        let mut raw = encode_quantized(&chunk_cache(&m)).to_vec();
        let n = raw.len();
        raw[n / 2] ^= 0x55;
        assert_eq!(
            decode_quantized(Bytes::from(raw)),
            Err(DecodeError::Corrupted)
        );
    }

    #[test]
    fn plain_entries_are_rejected_by_magic() {
        let m = model();
        let cache = chunk_cache(&m);
        let plain = encode(&cache);
        assert!(matches!(
            decode_quantized(plain),
            Err(DecodeError::BadMagic | DecodeError::Corrupted)
        ));
    }

    #[test]
    fn zero_rows_roundtrip() {
        let cache = KvCache::empty(2, 8);
        let back = decode_quantized(encode_quantized(&cache)).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.n_layers(), 2);
    }

    #[test]
    fn declared_sizes_match_encoding() {
        let m = model();
        let cache = chunk_cache(&m);
        let bytes = encode_quantized(&cache);
        assert_eq!(
            bytes.len(),
            q_entry_len(cache.n_layers(), cache.len(), cache.layers[0].k.cols())
        );
        // The shared verifier accepts the quantized format too.
        assert_eq!(verify_entry(&bytes).unwrap().rows, cache.len());
    }

    #[test]
    fn transcode_roundtrip_equals_direct_quantization() {
        let m = model();
        let cache = chunk_cache(&m);
        let f32_entry = encode(&cache);
        // Transcode from bytes must equal encoding from the cache.
        let q = quantize_entry(&f32_entry).unwrap();
        assert_eq!(q, encode_quantized(&cache));
        // And back: dequantize re-frames as f32, decoding to the
        // quantization image of the original (loss happens exactly once).
        let back = dequantize_entry(&q).unwrap();
        let reloaded = decode(back).unwrap();
        assert_eq!(reloaded, decode_quantized(q.clone()).unwrap());
        // Idempotence in both directions.
        assert_eq!(quantize_entry(&q).unwrap(), q);
        let f = dequantize_entry(&f32_entry).unwrap();
        assert_eq!(f, f32_entry);
    }

    #[test]
    fn transcode_rejects_corruption() {
        let m = model();
        let cache = chunk_cache(&m);
        let mut f32_entry = encode(&cache).to_vec();
        let n = f32_entry.len();
        f32_entry[n - 12] ^= 0xFF;
        assert_eq!(quantize_entry(&f32_entry), Err(DecodeError::Corrupted));
        let mut q = encode_quantized(&cache).to_vec();
        let n = q.len();
        q[n - 12] ^= 0xFF;
        assert_eq!(dequantize_entry(&q), Err(DecodeError::Corrupted));
    }

    #[test]
    fn entry_reader_streams_quantized_layers() {
        // Satellite: the layer-streaming reader works off a quantized
        // record directly — per-layer dequantize, no whole-entry decode.
        let m = model();
        let cache = chunk_cache(&m);
        let q = encode_quantized(&cache);
        let r = EntryReader::new(q.clone()).unwrap();
        assert_eq!(r.format(), EntryFormat::Quantized);
        assert_eq!(r.layer_bytes(), q_layer_block_len(r.rows(), r.meta().width));
        let direct = decode_quantized(q).unwrap();
        for l in 0..r.n_layers() {
            assert_eq!(r.layer(l).unwrap(), direct.layers[l], "layer {l}");
        }
    }
}
