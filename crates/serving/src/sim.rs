//! The discrete-event serving simulator.
//!
//! Single-GPU FIFO serving: each request waits for the GPU, then runs its
//! scheme's admission work (loading cached KV, recomputing, prefilling
//! misses and the query). TTFT = completion of prefill − arrival. Chunk
//! (or prefix) entries live in a byte-bounded LRU store; misses are
//! computed at full prefill cost and inserted.
//!
//! Scheme differences (the figure-14 mechanics):
//!
//! - **Full recompute** — no store; everything prefilled.
//! - **Prefix caching** — entries are *prefix chains*: a chunk cached
//!   behind one prefix cannot be reused behind another, so the same chunk
//!   occupies multiple entries (the storage blow-up of §7.2); loads are
//!   idealized free (the paper's assumption in its favor).
//! - **Full KV reuse** — per-chunk entries; hits are loaded, never
//!   recomputed.
//! - **CacheBlend** — per-chunk entries; hits are loaded *pipelined* with
//!   selective recompute at the configured ratio.

use std::collections::HashMap;

use cb_baselines::SchemeKind;
use cb_core::engine::blend_admission;
use cb_storage::device::DeviceKind;
use cb_storage::perf::PerfModel;

use crate::stats::LatencySummary;
use crate::workload::Workload;

/// Simulator configuration.
#[derive(Clone, Debug)]
pub struct ServingConfig {
    /// Which scheme serves the requests.
    pub scheme: SchemeKind,
    /// Paper-scale delay model.
    pub perf: PerfModel,
    /// Device the KV store lives on.
    pub device: DeviceKind,
    /// CacheBlend's recompute ratio.
    pub recompute_ratio: f64,
    /// Paper-scale tokens per chunk (512 in Figure 14).
    pub chunk_tokens: usize,
    /// Query suffix tokens.
    pub query_tokens: usize,
    /// Decoded tokens per request (occupies the GPU after TTFT).
    pub decode_tokens: usize,
    /// KV store capacity in bytes.
    pub store_capacity: u64,
}

impl ServingConfig {
    /// The figure-14 setup for a scheme/model/device.
    pub fn fig14(scheme: SchemeKind, perf: PerfModel, device: DeviceKind) -> Self {
        Self {
            scheme,
            perf,
            device,
            recompute_ratio: 0.15,
            chunk_tokens: 512,
            query_tokens: 32,
            decode_tokens: 24,
            // 64 GB of KV storage.
            store_capacity: 64_000_000_000,
        }
    }
}

/// Aggregate results of one simulation.
#[derive(Clone, Debug)]
pub struct ServingStats {
    /// TTFT distribution.
    pub ttft: LatencySummary,
    /// Fraction of chunk lookups served from cache.
    pub hit_rate: f64,
    /// Completed requests / makespan.
    pub throughput_rps: f64,
    /// Peak bytes resident in the store.
    pub peak_store_bytes: u64,
    /// Entries evicted.
    pub evictions: u64,
}

struct LruStore {
    capacity: u64,
    used: u64,
    peak: u64,
    clock: u64,
    entries: HashMap<u64, (u64, u64)>, // id -> (bytes, last_used)
    evictions: u64,
}

impl LruStore {
    fn new(capacity: u64) -> Self {
        Self {
            capacity,
            used: 0,
            peak: 0,
            clock: 0,
            entries: HashMap::new(),
            evictions: 0,
        }
    }

    fn hit(&mut self, id: u64) -> bool {
        self.clock += 1;
        if let Some(e) = self.entries.get_mut(&id) {
            e.1 = self.clock;
            true
        } else {
            false
        }
    }

    fn insert(&mut self, id: u64, bytes: u64) {
        self.clock += 1;
        if self.entries.contains_key(&id) || bytes > self.capacity {
            return;
        }
        while self.used + bytes > self.capacity {
            let victim = *self
                .entries
                .iter()
                .min_by_key(|(_, (_, t))| *t)
                .map(|(k, _)| k)
                .expect("over capacity with no entries");
            let (b, _) = self.entries.remove(&victim).unwrap();
            self.used -= b;
            self.evictions += 1;
        }
        self.entries.insert(id, (bytes, self.clock));
        self.used += bytes;
        self.peak = self.peak.max(self.used);
    }
}

/// The discrete-event simulator.
pub struct Simulator {
    cfg: ServingConfig,
}

fn mix(a: u64, b: u64) -> u64 {
    (a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15)).wrapping_mul(0xFF51_AFD7_ED55_8CCD)
}

impl Simulator {
    /// Creates a simulator.
    pub fn new(cfg: ServingConfig) -> Self {
        Self { cfg }
    }

    /// Runs a workload to completion.
    pub fn run(&self, workload: &Workload) -> ServingStats {
        let cfg = &self.cfg;
        let perf = &cfg.perf;
        // Entry sizes are modelled in whole bytes (rounded up) so store
        // accounting is exact integer arithmetic.
        let entry_bytes = perf.total_kv_bytes(cfg.chunk_tokens).ceil() as u64;
        let mut store = LruStore::new(cfg.store_capacity);
        let mut gpu_free = 0.0f64;
        let mut ttfts = Vec::with_capacity(workload.requests.len());
        let mut lookups = 0u64;
        let mut hits = 0u64;
        let mut last_finish = 0.0f64;

        for req in &workload.requests {
            let k = req.chunk_ids.len();
            let ctx_tokens = k * cfg.chunk_tokens;

            // Admission work for this scheme.
            let (ttft_work, gpu_work) = match cfg.scheme {
                SchemeKind::FullRecompute | SchemeKind::MapReduce | SchemeKind::MapRerank => {
                    let t = perf.ttft_full_prefill(ctx_tokens + cfg.query_tokens);
                    (t, t)
                }
                SchemeKind::PrefixCaching => {
                    // Longest cached prefix chain. Every chunk counts as a
                    // lookup; chunks past the first miss can never hit.
                    let mut chain = 0u64;
                    let mut matched = 0usize;
                    let mut walking = true;
                    let mut ids = Vec::with_capacity(k);
                    lookups += k as u64;
                    for &c in &req.chunk_ids {
                        chain = mix(chain, c);
                        ids.push(chain);
                        if walking {
                            if store.hit(chain) {
                                hits += 1;
                                matched += 1;
                            } else {
                                walking = false;
                            }
                        }
                    }
                    for &id in ids.iter().skip(matched) {
                        store.insert(id, entry_bytes);
                    }
                    let hit_tokens = matched * cfg.chunk_tokens;
                    let t = perf.ttft_prefix_caching(ctx_tokens + cfg.query_tokens, hit_tokens);
                    (t, t)
                }
                SchemeKind::FullReuse | SchemeKind::CacheBlend => {
                    let mut hit_chunks = 0usize;
                    for &c in &req.chunk_ids {
                        lookups += 1;
                        if store.hit(c) {
                            hits += 1;
                            hit_chunks += 1;
                        } else {
                            store.insert(c, entry_bytes);
                        }
                    }
                    let hit_tokens = hit_chunks * cfg.chunk_tokens;
                    let miss_tokens = ctx_tokens - hit_tokens;
                    if cfg.scheme == SchemeKind::FullReuse {
                        let t = perf.ttft_full_reuse(hit_tokens.max(1), 0, cfg.device)
                            + perf.ttft_full_prefill(miss_tokens + cfg.query_tokens);
                        (t, perf.ttft_full_prefill(miss_tokens + cfg.query_tokens))
                    } else {
                        // CacheBlend admissions go through the engine's
                        // delay model rather than re-deriving it here.
                        let cost = blend_admission(
                            perf,
                            cfg.device,
                            cfg.recompute_ratio,
                            hit_tokens,
                            miss_tokens,
                            cfg.query_tokens,
                        );
                        (cost.ttft_s, cost.gpu_s)
                    }
                }
            };

            let decode = cfg.decode_tokens as f64 * perf.decode_time_per_token();
            let start = gpu_free.max(req.arrival_s);
            let first_token = start + ttft_work;
            ttfts.push(first_token - req.arrival_s);
            gpu_free = start + ttft_work.max(gpu_work) + decode;
            last_finish = gpu_free;
        }

        let makespan = last_finish.max(f64::EPSILON);
        ServingStats {
            ttft: LatencySummary::of(ttfts),
            hit_rate: if lookups > 0 {
                hits as f64 / lookups as f64
            } else {
                0.0
            },
            throughput_rps: workload.requests.len() as f64 / makespan,
            peak_store_bytes: store.peak,
            evictions: store.evictions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadConfig;
    use cb_storage::perf::PaperModel;

    fn run(scheme: SchemeKind, rate: f64) -> ServingStats {
        let perf = PerfModel::on_a40(PaperModel::Mistral7B);
        let cfg = ServingConfig::fig14(scheme, perf, DeviceKind::NvmeSsd);
        let w = Workload::generate(&WorkloadConfig::extended(rate, 42));
        Simulator::new(cfg).run(&w)
    }

    #[test]
    fn blend_beats_full_recompute_on_ttft() {
        let blend = run(SchemeKind::CacheBlend, 0.5);
        let full = run(SchemeKind::FullRecompute, 0.5);
        assert!(
            blend.ttft.mean_s < full.ttft.mean_s / 1.5,
            "blend {} !≪ full {}",
            blend.ttft.mean_s,
            full.ttft.mean_s
        );
    }

    #[test]
    fn blend_beats_prefix_caching_on_ttft() {
        let blend = run(SchemeKind::CacheBlend, 0.5);
        let prefix = run(SchemeKind::PrefixCaching, 0.5);
        assert!(blend.ttft.mean_s < prefix.ttft.mean_s);
    }

    #[test]
    fn ttft_grows_with_request_rate() {
        let lo = run(SchemeKind::FullRecompute, 0.1);
        let hi = run(SchemeKind::FullRecompute, 2.0);
        assert!(
            hi.ttft.mean_s > lo.ttft.mean_s * 2.0,
            "queueing should inflate TTFT: {} vs {}",
            lo.ttft.mean_s,
            hi.ttft.mean_s
        );
    }

    #[test]
    fn blend_sustains_higher_rates_than_full() {
        // At a rate that saturates full recompute, CacheBlend stays near
        // its unloaded TTFT — the crossing structure of Figure 14.
        let rate = 0.8;
        let blend = run(SchemeKind::CacheBlend, rate);
        let full = run(SchemeKind::FullRecompute, rate);
        assert!(blend.ttft.p95_s < full.ttft.p95_s / 2.0);
    }

    #[test]
    fn chunk_reuse_produces_cache_hits() {
        let s = run(SchemeKind::CacheBlend, 0.5);
        assert!(s.hit_rate > 0.5, "hit rate {}", s.hit_rate);
    }

    #[test]
    fn prefix_caching_hits_less_than_chunk_caching() {
        // Only leading chunks can hit for prefix caching.
        let blend = run(SchemeKind::CacheBlend, 0.5);
        let prefix = run(SchemeKind::PrefixCaching, 0.5);
        assert!(prefix.hit_rate < blend.hit_rate);
    }

    #[test]
    fn full_reuse_is_fastest_scheme() {
        let reuse = run(SchemeKind::FullReuse, 0.5);
        let blend = run(SchemeKind::CacheBlend, 0.5);
        assert!(reuse.ttft.mean_s <= blend.ttft.mean_s + 1e-9);
    }

    #[test]
    fn store_capacity_bounds_residency() {
        let perf = PerfModel::on_a40(PaperModel::Mistral7B);
        let mut cfg = ServingConfig::fig14(SchemeKind::CacheBlend, perf, DeviceKind::NvmeSsd);
        cfg.store_capacity = (20.0 * perf.total_kv_bytes(cfg.chunk_tokens)) as u64;
        let w = Workload::generate(&WorkloadConfig::extended(0.5, 42));
        let s = Simulator::new(cfg.clone()).run(&w);
        assert!(s.peak_store_bytes <= cfg.store_capacity);
        assert!(s.evictions > 0, "tiny store must evict");
    }
}
