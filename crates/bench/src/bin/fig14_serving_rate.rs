//! Regenerates fig14 (see DESIGN.md §6 and EXPERIMENTS.md).
//!
//! Flags:
//!
//! - `--smoke` — shrunken grids (seconds, for CI).
//! - `--backend analytic|engine|both` — the delay-model arm (default),
//!   the closed-loop real-engine arm, or both.

use cb_bench::experiments::fig14::{run_opts, BackendArm, Fig14Opts};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let backend = match args.iter().position(|a| a == "--backend") {
        None => BackendArm::Analytic,
        Some(i) => match args.get(i + 1).map(String::as_str) {
            Some("analytic") => BackendArm::Analytic,
            Some("engine") => BackendArm::Engine,
            Some("both") => BackendArm::Both,
            Some(other) => {
                eprintln!("unknown --backend {other:?} (expected analytic|engine|both)");
                std::process::exit(2);
            }
            None => {
                eprintln!("--backend requires a value (analytic|engine|both)");
                std::process::exit(2);
            }
        },
    };
    run_opts(Fig14Opts { smoke, backend });
}
