//! Streaming responses: the per-request [`Event`] lifecycle and the
//! [`ResponseStream`] handle returned by
//! [`EngineService::submit_stream`](crate::scheduler::EngineService::submit_stream).
//!
//! Every request admitted to the scheduler produces one event stream:
//!
//! ```text
//! Queued → Admitted → FirstToken(ttft) → Token* → Done(response)
//!                                                  └ or Failed(error)
//! ```
//!
//! Events always arrive in that order. `FirstToken` fires the moment
//! prefill (the blend) completes — its [`TtftBreakdown`] is the TTFT
//! measurement. `Token` fires once per decoded answer token (requests
//! whose first logits already terminate the answer stream zero `Token`
//! events). Exactly one terminal event (`Done` or `Failed`) closes the
//! stream; if the service shuts down first, the stream ends without a
//! terminal event and [`ResponseStream::collect`] reports
//! [`EngineError::Canceled`].

use cb_tokenizer::TokenId;
use crossbeam::channel::{Receiver, Sender};

use crate::engine::{EngineError, Response, TtftBreakdown};

/// One step in a request's lifecycle, in stream order.
// The Done variant carries the full Response by design (the terminal
// event moves once per request, never copies), so the size skew between
// variants is acceptable.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum Event {
    /// The request was accepted into the admission queue.
    Queued,
    /// A scheduler worker picked the request up and started serving it.
    Admitted,
    /// Prefill (pipelined blend) completed; decoding begins. The
    /// breakdown is the TTFT measurement (its `decode` field is zero).
    FirstToken(TtftBreakdown),
    /// One decoded answer token.
    Token(TokenId),
    /// Terminal: the request completed. The response's `ttft` carries the
    /// finalized decode/total durations.
    Done(Response),
    /// Terminal: the request failed.
    Failed(EngineError),
}

impl Event {
    /// True for the terminal events ([`Event::Done`] / [`Event::Failed`]).
    pub fn is_terminal(&self) -> bool {
        matches!(self, Event::Done(_) | Event::Failed(_))
    }
}

/// Receiving end of one request's event stream. Iterate it for the events
/// as they happen, or call [`ResponseStream::collect`] to block until the
/// terminal event and recover the one-shot
/// [`Engine::submit`](crate::engine::Engine::submit) shape.
#[derive(Debug)]
pub struct ResponseStream {
    rx: Receiver<Event>,
}

impl ResponseStream {
    pub(crate) fn new(rx: Receiver<Event>) -> Self {
        Self { rx }
    }

    /// A detached stream fed by an explicit sender — the hook remote front
    /// ends (e.g. a network gateway relaying events that arrived off the
    /// wire) use to re-materialize a request's stream outside the
    /// scheduler. Dropping the sender without a terminal event closes the
    /// stream, so [`ResponseStream::collect`] reports
    /// [`EngineError::Canceled`] exactly as it does for an in-process
    /// service shutdown.
    pub fn channel() -> (Sender<Event>, ResponseStream) {
        let (tx, rx) = crossbeam::channel::unbounded();
        (tx, ResponseStream { rx })
    }

    /// Blocks for the next event; `None` once the stream is closed (after
    /// the terminal event, or if the service shut down mid-flight).
    pub fn recv(&self) -> Option<Event> {
        self.rx.recv().ok()
    }

    /// Returns a buffered event without blocking.
    pub fn try_recv(&self) -> Option<Event> {
        self.rx.try_recv().ok()
    }

    /// Blocks until the stream's terminal event and returns the one-shot
    /// response — equivalent to [`Engine::submit`](crate::engine::Engine::submit)
    /// for the same request. Intermediate events are drained and dropped.
    pub fn collect(self) -> Result<Response, EngineError> {
        for event in self {
            match event {
                Event::Done(resp) => return Ok(resp),
                Event::Failed(err) => return Err(err),
                _ => {}
            }
        }
        Err(EngineError::Canceled)
    }
}

impl Iterator for ResponseStream {
    type Item = Event;

    fn next(&mut self) -> Option<Event> {
        self.rx.recv().ok()
    }
}
